"""Static HTML rendering of dashboards — Grafana output, headless.

:func:`render_html` turns rendered :class:`~repro.webservices.grafana.PanelData`
into a self-contained HTML page with inline SVG charts (no external
assets, viewable offline).  Supported payload shapes:

* Figure-5 style — ``{label: {"mean": m, "ci": h}}`` → bar chart with
  error bars;
* Figure-9 style — ``{"edges": arr, op: {"bytes"/"count": arr}}`` →
  stacked area-ish step series per op;
* telemetry log-histograms — ``{"bin_edges": arr, "counts": arr}`` →
  bin bars with the first/last edge labelled;
* row tables — ``[{col: value, ...}, ...]`` → an HTML table;
* anything else → a ``<pre>`` dump.
"""

from __future__ import annotations

import html as _html

import numpy as np

from repro.webservices.grafana import PanelData

__all__ = ["render_html"]

_SERIES_COLORS = {"write": "#3274d9", "read": "#56a64b"}  # Grafana blue/green
_PANEL_W, _PANEL_H = 640, 240
_MARGIN = 40


def _svg_header() -> str:
    return (
        f'<svg viewBox="0 0 {_PANEL_W} {_PANEL_H}" '
        f'width="{_PANEL_W}" height="{_PANEL_H}" '
        'xmlns="http://www.w3.org/2000/svg" role="img">'
    )


def _no_data_svg(note: str = "(no data)") -> str:
    return (
        _svg_header()
        + f'<text x="{_PANEL_W / 2:.0f}" y="{_PANEL_H / 2:.0f}" '
        f'text-anchor="middle" font-size="12" fill="#777">'
        f"{_html.escape(note)}</text></svg>"
    )


def _bars_svg(payload: dict) -> str:
    labels = sorted(payload)
    # Non-finite means/CIs (all-NaN series) must not leak NaN into SVG
    # coordinates: draw them as zero-height bars labelled "n/a".
    means = [payload[k]["mean"] for k in labels]
    cis = [payload[k].get("ci", 0.0) for k in labels]
    means = [m if np.isfinite(m) else None for m in means]
    cis = [c if np.isfinite(c) else 0.0 for c in cis]
    top = max(
        (m + c for m, c in zip(means, cis) if m is not None), default=1.0
    ) or 1.0
    plot_w = _PANEL_W - 2 * _MARGIN
    plot_h = _PANEL_H - 2 * _MARGIN
    bar_w = plot_w / max(len(labels), 1) * 0.6
    gap = plot_w / max(len(labels), 1)
    parts = [_svg_header()]
    for i, (label, mean, ci) in enumerate(zip(labels, means, cis)):
        x = _MARGIN + i * gap + (gap - bar_w) / 2
        h = 0.0 if mean is None else mean / top * plot_h
        y = _PANEL_H - _MARGIN - h
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bar_w:.1f}" '
            f'height="{h:.1f}" fill="{_SERIES_COLORS["write"]}" />'
        )
        if mean is not None and ci > 0:
            cx = x + bar_w / 2
            y_hi = _PANEL_H - _MARGIN - (mean + ci) / top * plot_h
            y_lo = _PANEL_H - _MARGIN - max(mean - ci, 0) / top * plot_h
            parts.append(
                f'<line x1="{cx:.1f}" y1="{y_hi:.1f}" x2="{cx:.1f}" '
                f'y2="{y_lo:.1f}" stroke="#333" stroke-width="1.5" />'
            )
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{_PANEL_H - _MARGIN + 16}" '
            f'text-anchor="middle" font-size="11">{_html.escape(str(label))}</text>'
        )
        value = "n/a" if mean is None else f"{mean:.0f}"
        parts.append(
            f'<text x="{x + bar_w / 2:.1f}" y="{y - 4:.1f}" '
            f'text-anchor="middle" font-size="10">{value}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _series_svg(payload: dict) -> str:
    edges = np.asarray(payload["edges"], dtype=float)
    series = {
        op: np.asarray(v["bytes"], dtype=float)
        for op, v in payload.items()
        if isinstance(v, dict) and "bytes" in v
    }
    if len(edges) < 2 or not series:
        return _no_data_svg()
    finite_tops = [
        np.nanmax(s) for s in series.values()
        if len(s) and np.isfinite(s).any()
    ]
    top = max(finite_tops, default=1.0) or 1.0
    t0, t1 = edges[0], edges[-1]
    span = (t1 - t0) or 1.0
    plot_w = _PANEL_W - 2 * _MARGIN
    plot_h = _PANEL_H - 2 * _MARGIN

    def x_of(t):
        return _MARGIN + (t - t0) / span * plot_w

    def y_of(v):
        return _PANEL_H - _MARGIN - v / top * plot_h

    parts = [_svg_header()]
    # Axis line.
    parts.append(
        f'<line x1="{_MARGIN}" y1="{_PANEL_H - _MARGIN}" '
        f'x2="{_PANEL_W - _MARGIN}" y2="{_PANEL_H - _MARGIN}" stroke="#999" />'
    )
    for op, values in sorted(series.items()):
        color = _SERIES_COLORS.get(op, "#d9a439")
        points = []
        # Non-finite samples (all-NaN series) are skipped rather than
        # emitted as "nan" SVG coordinates.
        for i, v in enumerate(values[: len(edges) - 1]):
            if not np.isfinite(v):
                continue
            points.append(f"{x_of(edges[i]):.1f},{y_of(v):.1f}")
            points.append(f"{x_of(edges[i + 1]):.1f},{y_of(v):.1f}")
        if not points:
            continue
        parts.append(
            f'<polyline fill="none" stroke="{color}" stroke-width="2" '
            f'points="{" ".join(points)}" />'
        )
    # Legend.
    lx = _MARGIN
    for op in sorted(series):
        color = _SERIES_COLORS.get(op, "#d9a439")
        parts.append(f'<rect x="{lx}" y="8" width="10" height="10" fill="{color}"/>')
        parts.append(
            f'<text x="{lx + 14}" y="17" font-size="11">{_html.escape(op)}</text>'
        )
        lx += 70
    parts.append("</svg>")
    return "".join(parts)


def _hist_svg(payload: dict) -> str:
    edges = [float(e) for e in payload["bin_edges"]]
    counts = [int(c) for c in payload["counts"]]
    if len(edges) < 2 or not counts:
        return _no_data_svg()
    top = max(counts) if any(counts) else 1
    plot_w = _PANEL_W - 2 * _MARGIN
    plot_h = _PANEL_H - 2 * _MARGIN
    bin_w = plot_w / max(len(counts), 1)
    parts = [_svg_header()]
    parts.append(
        f'<line x1="{_MARGIN}" y1="{_PANEL_H - _MARGIN}" '
        f'x2="{_PANEL_W - _MARGIN}" y2="{_PANEL_H - _MARGIN}" stroke="#999" />'
    )
    for i, c in enumerate(counts):
        if c == 0:
            continue
        h = c / top * plot_h
        x = _MARGIN + i * bin_w
        y = _PANEL_H - _MARGIN - h
        parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{bin_w * 0.9:.1f}" '
            f'height="{h:.1f}" fill="{_SERIES_COLORS["write"]}" />'
        )
    for x, label, anchor in (
        (_MARGIN, f"{edges[0]:.0e}", "start"),
        (_PANEL_W - _MARGIN, f"{edges[-1]:.0e}", "end"),
    ):
        parts.append(
            f'<text x="{x}" y="{_PANEL_H - _MARGIN + 16}" '
            f'text-anchor="{anchor}" font-size="11">{_html.escape(label)}</text>'
        )
    parts.append("</svg>")
    return "".join(parts)


def _table_html(rows: list) -> str:
    cols = list(rows[0])
    parts = ["<table>", "<tr>"]
    parts.extend(f"<th>{_html.escape(str(c))}</th>" for c in cols)
    parts.append("</tr>")
    for row in rows:
        parts.append("<tr>")
        parts.extend(
            f"<td>{_html.escape(str(row.get(c, '')))}</td>" for c in cols
        )
        parts.append("</tr>")
    parts.append("</table>")
    return "".join(parts)


def _panel_html(panel: PanelData) -> str:
    payload = panel.payload
    if isinstance(payload, dict) and payload and all(
        isinstance(v, dict) and "mean" in v for v in payload.values()
    ):
        body = _bars_svg(payload)
    elif isinstance(payload, dict) and "bin_edges" in payload and "counts" in payload:
        body = _hist_svg(payload)
    elif isinstance(payload, dict) and "edges" in payload:
        body = _series_svg(payload)
    elif isinstance(payload, list) and payload and all(
        isinstance(r, dict) for r in payload
    ):
        body = _table_html(payload)
    elif isinstance(payload, list) and not payload:
        # An empty result set is a normal state, not a repr dump.
        body = '<p class="meta">(no rows)</p>'
    else:
        body = f"<pre>{_html.escape(repr(payload))}</pre>"
    return (
        '<section class="panel">'
        f"<h2>{_html.escape(panel.title)}</h2>"
        f'<div class="meta">{panel.rows_queried} rows queried · viz: '
        f"{_html.escape(panel.viz)}</div>"
        f"{body}</section>"
    )


def render_html(title: str, panels: list[PanelData]) -> str:
    """A complete, self-contained dashboard page."""
    sections = "\n".join(_panel_html(p) for p in panels)
    return f"""<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>{_html.escape(title)}</title>
<style>
  body {{ font-family: system-ui, sans-serif; background: #f4f5f5;
         margin: 0; padding: 24px; }}
  h1 {{ font-size: 20px; }}
  .panel {{ background: #fff; border: 1px solid #d8d9da; border-radius: 4px;
            padding: 12px 16px; margin-bottom: 16px; max-width: 700px; }}
  .panel h2 {{ font-size: 14px; margin: 0 0 4px; }}
  .meta {{ color: #777; font-size: 11px; margin-bottom: 8px; }}
</style>
</head>
<body>
<h1>{_html.escape(title)}</h1>
{sections}
</body>
</html>
"""
