"""Live diagnosis dashboard: the firing set and rule series as panels.

The Grafana machinery in this package renders *stored* data; this
module renders the :class:`~repro.diagnosis.DiagnosisEngine`'s live
state — currently-firing alerts, the incident history, and each rule's
evaluated value over a trailing window (the "windowed refresh": every
:meth:`LiveDashboard.render` re-reads the engine's sliding windows at
the current simulated instant).  Output is the same
:class:`~repro.webservices.grafana.PanelData` everything else uses, so
the panels drop into :func:`~repro.webservices.grafana.render_ascii`
and the HTML dashboard unchanged.
"""

from __future__ import annotations

from repro.webservices.grafana import PanelData, render_ascii

__all__ = ["LiveDashboard"]


class LiveDashboard:
    """Windowed panel view over one diagnosis engine."""

    def __init__(self, engine, window_s: float | None = None,
                 slow_traces: int = 5, explain=None):
        self.engine = engine
        #: Trailing window each refresh draws (default: 8 rule windows).
        self.window_s = (
            window_s
            if window_s is not None
            else 8 * engine.config.window_s
        )
        #: How many slowest stored traces the drill-down panel shows
        #: (0 disables the panel).
        self.slow_traces = slow_traces
        #: A post-hoc :class:`~repro.diagnosis.explain.ExplainReport`;
        #: when set, the dashboard adds a bottleneck-verdict panel.
        self.explain = explain

    # -- panels --------------------------------------------------------

    def _alert_rows(self, alerts) -> list[dict]:
        epoch = self.engine.world.config.epoch
        return [
            {
                "rule": a.rule,
                "severity": a.severity,
                "state": a.state,
                "fired": (
                    "-" if a.t_fired is None else f"{a.t_fired - epoch:.3f}"
                ),
                "resolved": (
                    "-" if a.t_resolved is None else f"{a.t_resolved - epoch:.3f}"
                ),
                "value": f"{a.peak_value:.4g}",
                "detail": a.detail,
            }
            for a in alerts
        ]

    def render(self) -> list[PanelData]:
        """The current panel set: firing alerts, incident history, and
        one time-series panel per rule over the trailing window."""
        engine = self.engine
        epoch = engine.world.config.epoch
        firing = engine.firing()
        panels = [
            PanelData(
                title="firing alerts",
                viz="table",
                payload=self._alert_rows(firing),
                rows_queried=len(firing),
            ),
            PanelData(
                title="incident log",
                viz="table",
                payload=self._alert_rows(engine.incidents),
                rows_queried=len(engine.incidents),
            ),
        ]
        slow_panel = self._slow_trace_panel()
        if slow_panel is not None:
            panels.append(slow_panel)
        recorder_panel = self._recorder_panel()
        if recorder_panel is not None:
            panels.append(recorder_panel)
        verdict_panel = self._verdict_panel()
        if verdict_panel is not None:
            panels.append(verdict_panel)
        for name, series in sorted(engine.rule_series.items()):
            tail = series.tail(self.window_s)
            panels.append(
                PanelData(
                    title=f"rule: {name}",
                    viz="timeseries",
                    payload={
                        "t": [t - epoch for t, _ in tail],
                        "value": [v for _, v in tail],
                    },
                    rows_queried=len(tail),
                )
            )
        return panels

    def _slow_trace_panel(self) -> PanelData | None:
        """Top-N slowest stored traces with their gating stage.

        Read-only over the world's collector (no registry, no exemplar
        annotation), so the live refresh never mutates telemetry state.
        """
        if self.slow_traces <= 0:
            return None
        collector = getattr(self.engine.world, "telemetry", None)
        if collector is None:
            return None
        from repro.telemetry.spans import SpanTree, critical_path

        stored = [
            (trace.end_to_end_latency_s, trace)
            for trace in collector.traces.values()
            if trace.end_to_end_latency_s is not None
        ]
        stored.sort(key=lambda pair: (-pair[0], pair[1].trace_id))
        rows = []
        for e2e, trace in stored[: self.slow_traces]:
            path = critical_path(SpanTree.from_trace(trace))
            rows.append(
                {
                    "trace_id": trace.trace_id,
                    "e2e_ms": f"{e2e * 1e3:.3f}",
                    "gating": path.gating_stage,
                    "gating_ms": f"{path.stage_seconds()[path.gating_stage] * 1e3:.3f}",
                    "hops": len(trace.hops),
                }
            )
        return PanelData(
            title=f"slowest traces (top {len(rows)})",
            viz="table",
            payload=rows,
            rows_queried=len(rows),
        )

    def _recorder_panel(self) -> PanelData | None:
        """Flight-recorder ring ledgers, when the recorder is armed.

        Read-only over the recorder's counters; absent entirely on
        worlds without one so legacy panel sets are unchanged.
        """
        recorder = getattr(self.engine.world, "flight_recorder", None)
        if recorder is None:
            return None
        rows = [
            {
                "stream": name,
                "captured": ring.captured,
                "evicted": ring.evicted,
                "retained": ring.retained,
                "reconciles": "yes" if ring.reconciles() else "NO",
            }
            for name, ring in recorder.rings.items()
        ]
        return PanelData(
            title=(f"flight recorder ({recorder.bundles_frozen} "
                   f"bundle(s) frozen)"),
            viz="table",
            payload=rows,
            rows_queried=len(rows),
        )

    def _verdict_panel(self) -> PanelData | None:
        """Bottleneck verdicts from an attached explain report.

        Absent entirely when no report was attached, so legacy panel
        sets are unchanged; the report itself is a pure post-hoc read,
        so attaching one never perturbs the engine.
        """
        report = self.explain
        if report is None:
            return None
        rows = [
            {
                "class": v.cls,
                "score": f"{v.score:.3g}",
                "strategy": v.strategy,
                "evidence": ", ".join(
                    (v.evidence or {}).get("rules", ())) or "-",
            }
            for v in report.verdicts
        ]
        return PanelData(
            title=(f"bottleneck verdicts (job {report.job_id}, "
                   f"primary {report.primary.cls})"),
            viz="table",
            payload=rows,
            rows_queried=len(rows),
        )

    # -- rendering -----------------------------------------------------

    def render_text(self, width: int = 64) -> str:
        """ASCII refresh: tables for alerts, sparkline-ish series."""
        blocks = []
        for panel in self.render():
            if panel.viz == "table":
                blocks.append(render_ascii(panel, width=width))
            else:
                values = panel.payload["value"]
                if not any(values):
                    continue
                top = max(values) or 1.0
                row = "".join(
                    "▁▂▃▄▅▆▇█"[min(int(v / top * 7.999), 7)] if v > 0 else " "
                    for v in values[-width:]
                )
                blocks.append(f"== {panel.title} ==\n{row}")
        return "\n\n".join(blocks)

    def to_html(self, title: str = "Live diagnosis") -> str:
        from repro.webservices.html import render_html

        return render_html(title, self.render())
