"""Cross-application I/O signatures.

The paper's closing motivation: the integration should "benefit users
to collect and assist in the detection of application I/O performance
variances across multiple applications."  An :func:`io_signature`
condenses one job's event stream into a comparable fingerprint —
volumes, op mix, sizes, rates, burstiness — and
:func:`classify_workload` names the regime, which is exactly the
triage a center-wide dashboard performs.
"""

from __future__ import annotations

import numpy as np

from repro.webservices.dataframe import DataFrame

__all__ = ["io_signature", "compare_signatures", "classify_workload"]


def io_signature(df: DataFrame, job_id: int | None = None) -> dict:
    """Fingerprint of one job's I/O (connector events, POSIX layer).

    Keys: ``bytes_read``, ``bytes_written``, ``n_reads``, ``n_writes``,
    ``n_opens``, ``mean_read_size``, ``mean_write_size``, ``duration_s``,
    ``event_rate_per_s``, ``read_write_byte_ratio``, ``mean_op_dur_s``.

    Every edge case yields a defined signature: an empty frame (or a
    ``job_id`` with no events) is all zeros, a single-op job has
    ``duration_s == 0`` with the event count standing in for the rate,
    and a job that wrote nothing reports ratio ``inf`` only when it
    actually read bytes (0.0 when both sides are zero).
    """
    if job_id is not None:
        df = df.filter(df.col("job_id") == job_id)
    if len(df) == 0:
        return {
            "bytes_read": 0.0,
            "bytes_written": 0.0,
            "n_reads": 0,
            "n_writes": 0,
            "n_opens": 0,
            "mean_read_size": 0.0,
            "mean_write_size": 0.0,
            "duration_s": 0.0,
            "event_rate_per_s": 0.0,
            "read_write_byte_ratio": 0.0,
            "mean_op_dur_s": 0.0,
        }
    op = df.col("op")
    sizes = df.col("seg_len").astype(float)
    durs = df.col("seg_dur").astype(float)
    stamps = df.col("timestamp").astype(float)

    reads = op == "read"
    writes = op == "write"
    n_reads = int(reads.sum())
    n_writes = int(writes.sum())
    bytes_read = float(sizes[reads].sum()) if n_reads else 0.0
    bytes_written = float(sizes[writes].sum()) if n_writes else 0.0
    duration = float(stamps.max() - stamps.min()) if len(df) > 1 else 0.0

    return {
        "bytes_read": bytes_read,
        "bytes_written": bytes_written,
        "n_reads": n_reads,
        "n_writes": n_writes,
        "n_opens": int((op == "open").sum()),
        "mean_read_size": bytes_read / n_reads if n_reads else 0.0,
        "mean_write_size": bytes_written / n_writes if n_writes else 0.0,
        "duration_s": duration,
        "event_rate_per_s": len(df) / duration if duration > 0 else float(len(df)),
        "read_write_byte_ratio": (
            bytes_read / bytes_written if bytes_written
            else float("inf") if bytes_read else 0.0
        ),
        "mean_op_dur_s": float(durs[reads | writes].mean()) if n_reads + n_writes else 0.0,
    }


def classify_workload(sig: dict) -> str:
    """Name the I/O regime of a signature.

    Heuristics in priority order:

    * ``idle`` — no events at all (the empty signature);
    * ``metadata-intensive`` — more opens than data ops;
    * ``small-op-streaming`` — high event rate with tiny mean op size
      (the HMMER profile, the connector's worst case);
    * ``checkpoint`` — write-dominant large sequential ops;
    * ``balanced-rw`` — comparable read/write volume with large ops;
    * ``read-intensive`` — read-dominant.
    """
    data_ops = sig["n_reads"] + sig["n_writes"]
    if data_ops + sig["n_opens"] == 0:
        return "idle"
    if sig["n_opens"] > data_ops:
        return "metadata-intensive"
    mean_size = max(sig["mean_read_size"], sig["mean_write_size"])
    if sig["event_rate_per_s"] > 500 and mean_size < 64 * 1024:
        return "small-op-streaming"
    if sig["bytes_written"] > 4 * sig["bytes_read"] and sig["mean_write_size"] >= 64 * 1024:
        return "checkpoint"
    if sig["bytes_read"] > 4 * sig["bytes_written"]:
        return "read-intensive"
    return "balanced-rw"


def compare_signatures(signatures: dict) -> list[dict]:
    """Rank jobs/apps by connector cost exposure.

    ``signatures`` maps a label to its signature.  Returns rows sorted
    by event rate (the quantity that predicts connector overhead per
  Table II), each with the classified regime.
    """
    rows = []
    for label, sig in signatures.items():
        rows.append(
            {
                "label": label,
                "class": classify_workload(sig),
                "event_rate_per_s": sig["event_rate_per_s"],
                "bytes_total": sig["bytes_read"] + sig["bytes_written"],
                "mean_op_size": max(sig["mean_read_size"], sig["mean_write_size"]),
                "overhead_risk": (
                    "high" if sig["event_rate_per_s"] > 500
                    else "medium" if sig["event_rate_per_s"] > 100
                    else "low"
                ),
            }
        )
    rows.sort(key=lambda r: r["event_rate_per_s"], reverse=True)
    return rows
