"""Trace drill-down rendering: waterfalls and critical-path flames.

The Grafana-style machinery in this package renders stored query
results; this module renders **span trees** — the per-message and
campaign-aggregated views behind the "which hop gated this slow
message" workflow:

* :func:`waterfall_panel` / :func:`render_waterfall` — one trace as an
  OpenTelemetry-style waterfall: each span a bar positioned on the
  root's timeline, critical-path spans marked and their gating share
  shown as slack;
* :func:`flame_panel` — the campaign
  :class:`~repro.telemetry.spans.CriticalPathRollup` as a
  flamegraph-style stage breakdown (gating seconds vs slack per
  stage);
* :func:`trace_panels` — the standard drill-down panel set for a
  :class:`~repro.telemetry.spans.TraceRegistry` (slowest-trace table,
  flame, per-trace waterfalls), all ordinary
  :class:`~repro.webservices.grafana.PanelData` so they drop into
  :func:`~repro.webservices.grafana.render_ascii` and the HTML
  dashboard unchanged.
"""

from __future__ import annotations

from repro.telemetry.spans import GAP, SpanTree, critical_path
from repro.webservices.grafana import PanelData, render_ascii

__all__ = [
    "flame_panel",
    "render_waterfall",
    "trace_panels",
    "waterfall_panel",
]


def _format_s(seconds: float) -> str:
    """Compact duration: microseconds below 1 ms, else milliseconds."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def render_waterfall(tree: SpanTree, width: int = 48) -> str:
    """ASCII waterfall of one span tree.

    Each child span draws as a bar offset proportionally inside the
    root interval; ``█`` cells are on the critical path, ``░`` cells
    are slack (the span ran but something else gated).  Zero-width
    spans (instantaneous hops) render as a ``|`` marker.
    """
    path = critical_path(tree)
    begin, end = tree.t_begin, tree.t_end
    span_total = end - begin
    scale = width / span_total if span_total > 0 else 0.0

    # Per-span on-path cells, from the path's segments.
    on_path: dict[str, list[tuple[float, float]]] = {}
    for seg in path.segments:
        if seg.span_id is not None:
            on_path.setdefault(seg.span_id, []).append((seg.t_start, seg.t_end))

    header = f"trace {tree.trace_id}  [{tree.status}]"
    if tree.end_to_end_s is not None:
        header += f"  e2e={_format_s(tree.end_to_end_s)}"
    if tree.drop_site is not None:
        stage, node, outcome = tree.drop_site
        header += f"  dropped at {stage}/{node} ({outcome})"
    lines = [header]
    label_w = max(
        [len(f"{s.stage}@{s.node}") for s in tree.children] + [12]
    )
    for span in tree.children:
        label = f"{span.stage}@{span.node}" if span.node else span.stage
        start_col = int((min(max(span.t_start, begin), end) - begin) * scale)
        end_col = int((min(max(span.t_end, begin), end) - begin) * scale)
        if span.t_end <= span.t_start:
            row = " " * start_col + "|"
        else:
            cells = []
            for col in range(start_col, max(end_col, start_col + 1)):
                t_lo = begin + col / scale if scale else begin
                gated = any(
                    lo <= t_lo < hi for lo, hi in on_path.get(span.span_id, ())
                )
                cells.append("█" if gated else "░")
            row = " " * start_col + "".join(cells)
        lines.append(
            f"{label:<{label_w}} {row:<{width + 1}} "
            f"{_format_s(max(span.duration_s, 0.0)):>9}  {span.outcome}"
        )
    gap_s = path.stage_seconds().get(GAP, 0.0)
    lines.append(
        f"critical path: {_format_s(path.total_s)} "
        f"(gating: {path.gating_stage}; gaps: {_format_s(gap_s)}; "
        f"exact: {'yes' if path.exact else 'NO'})"
    )
    return "\n".join(lines)


def waterfall_panel(tree: SpanTree) -> PanelData:
    """One trace's waterfall as a ``PanelData`` (payload = span rows)."""
    path = critical_path(tree)
    rows = []
    for span in tree.children:
        rows.append(
            {
                "stage": span.stage,
                "node": span.node,
                "t_rel_s": span.t_start - tree.t_begin,
                "duration_s": span.duration_s,
                "path_s": path.contributions.get(span.span_id, 0.0),
                "slack_s": path.slack_s(span),
                "outcome": span.outcome,
            }
        )
    return PanelData(
        title=f"waterfall: {tree.trace_id}",
        viz="waterfall",
        payload={
            "trace_id": tree.trace_id,
            "status": tree.status,
            "end_to_end_s": tree.end_to_end_s,
            "gating_stage": path.gating_stage,
            "spans": rows,
        },
        rows_queried=len(rows),
    )


def flame_panel(rollup) -> PanelData:
    """Campaign critical-path rollup as a flamegraph-style panel.

    The payload's ``{stage: {"mean": path_s}}`` shape reuses the
    bar-chart branch of :func:`render_ascii`/HTML, so the aggregate
    view needs no new renderer.
    """
    payload = {
        row["stage"]: {"mean": row["path_s"] * 1e3, "ci": row["slack_s"] * 1e3}
        for row in rollup.rows()
    }
    return PanelData(
        title="critical-path flame (gating ms per stage; ±slack)",
        viz="bars",
        payload=payload,
        rows_queried=rollup.messages,
    )


def trace_panels(registry, slowest: int = 5) -> list[PanelData]:
    """The standard drill-down panel set for one registry."""
    rollup = registry.rollup()
    slow = registry.slowest(slowest)
    slow_rows = []
    for tree in slow:
        path = critical_path(tree)
        slow_rows.append(
            {
                "trace_id": tree.trace_id,
                "e2e_s": f"{tree.end_to_end_s:.6f}",
                "gating_stage": path.gating_stage,
                "gating_s": f"{path.stage_seconds()[path.gating_stage]:.6f}",
                "spans": len(tree.children),
            }
        )
    panels = [
        PanelData(
            title=f"slowest retained traces (top {len(slow_rows)})",
            viz="table",
            payload=slow_rows,
            rows_queried=len(slow_rows),
        ),
        flame_panel(rollup),
    ]
    panels.extend(waterfall_panel(tree) for tree in slow)
    drop_rows = [
        {
            "trace_id": tree.trace_id,
            "stage": site[0],
            "node": site[1],
            "outcome": site[2],
        }
        for tree in registry.drops()
        for site in (tree.drop_site,)
        if site is not None
    ]
    if drop_rows:
        panels.append(
            PanelData(
                title="retained dropped traces",
                viz="table",
                payload=drop_rows,
                rows_queried=len(drop_rows),
            )
        )
    return panels


def render_trace_panels(registry, slowest: int = 5, width: int = 64) -> str:
    """ASCII rendering of :func:`trace_panels` plus full waterfalls."""
    blocks = []
    for panel in trace_panels(registry, slowest=slowest):
        if panel.viz == "waterfall":
            tree = registry.get(panel.payload["trace_id"])
            blocks.append(render_waterfall(tree, width=width - 16))
        else:
            blocks.append(render_ascii(panel, width=width))
    return "\n\n".join(blocks)
