"""Quantifying I/O variability across repetitive jobs.

The paper's opening citation (Costa et al., SC'21) infers I/O
variability by examining repetitive job behaviour; this module provides
the quantitative core of that workflow over connector data: per-job and
cross-job dispersion statistics for operation durations, and a campaign
verdict on which ops are unstable.
"""

from __future__ import annotations

import numpy as np

from repro.webservices.dataframe import DataFrame, DataFrameError

__all__ = ["variability_report", "op_dispersion"]


def op_dispersion(durations: np.ndarray) -> dict:
    """Dispersion statistics of one duration sample.

    Keys: ``mean``, ``cov`` (coefficient of variation), ``iqr``,
    ``p50``, ``p95``, ``tail_ratio`` (p95/p50 — long-tail indicator).
    """
    durations = np.asarray(durations, dtype=float)
    if durations.size == 0:
        raise ValueError("need at least one duration")
    mean = float(durations.mean())
    std = float(durations.std(ddof=1)) if durations.size > 1 else 0.0
    p25, p50, p75, p95 = np.percentile(durations, [25, 50, 75, 95])
    return {
        "mean": mean,
        "cov": std / mean if mean > 0 else 0.0,
        "iqr": float(p75 - p25),
        "p50": float(p50),
        "p95": float(p95),
        "tail_ratio": float(p95 / p50) if p50 > 0 else float("inf"),
    }


def variability_report(df: DataFrame, ops: tuple = ("read", "write")) -> dict:
    """Cross-job variability of a campaign of repetitive jobs.

    For each op: per-job mean durations, the **cross-job CoV** of those
    means (the repetitive-job variability measure), and the pooled
    within-job dispersion.  ``verdict`` labels each op ``stable``
    (cross-job CoV < 0.25), ``variable`` (< 1.0) or ``highly-variable``.
    """
    mask = np.isin(df.col("op"), list(ops))
    sub = df.filter(mask)
    if len(sub) == 0:
        raise DataFrameError("no matching operations in the campaign")
    out: dict = {}
    for op in ops:
        op_mask = sub.col("op") == op
        if not op_mask.any():
            continue
        op_df = sub.filter(op_mask)
        per_job_means = {}
        for (job_id,), idx in op_df.groupby("job_id").groups().items():
            per_job_means[int(job_id)] = float(
                op_df.col("seg_dur")[idx].astype(float).mean()
            )
        means = np.asarray(list(per_job_means.values()))
        cross_cov = (
            float(means.std(ddof=1) / means.mean())
            if len(means) > 1 and means.mean() > 0
            else 0.0
        )
        verdict = (
            "stable"
            if cross_cov < 0.25
            else "variable" if cross_cov < 1.0 else "highly-variable"
        )
        out[op] = {
            "per_job_mean": per_job_means,
            "cross_job_cov": cross_cov,
            "pooled": op_dispersion(op_df.col("seg_dur").astype(float)),
            "verdict": verdict,
        }
    return out
