"""Workload-generator tests: each app produces its documented pattern."""

import pytest

from repro.apps import HaccIO, Hmmer, MpiIoTest, Sw4
from repro.apps.hacc_io import BYTES_PER_PARTICLE, VARIABLES
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job


@pytest.fixture
def world():
    return World(WorldConfig(seed=5, quiet=True, n_compute_nodes=8))


def _run(world, app, fs="nfs", connector=True):
    cfg = ConnectorConfig() if connector else None
    return run_job(world, app, fs, connector_config=cfg)


# ----------------------------------------------------------------- HACC-IO


def test_hacc_writes_then_reads_back(world):
    app = HaccIO(
        n_nodes=2, ranks_per_node=2, particles_per_rank=10_000,
        partial_io_model=False,
    )
    result = _run(world, app)
    summary = result.darshan_log.summary()
    posix = summary["POSIX"]
    expected = 4 * 10_000 * BYTES_PER_PARTICLE
    assert posix["POSIX_BYTES_WRITTEN"] == expected
    assert posix["POSIX_BYTES_READ"] == expected
    mpiio = summary["MPIIO"]
    assert mpiio["MPIIO_INDEP_WRITES"] == 4 * len(VARIABLES)
    assert mpiio["MPIIO_INDEP_READS"] == 4 * len(VARIABLES)
    assert mpiio["MPIIO_COLL_WRITES"] == 0


def test_hacc_bytes_per_particle_layout():
    assert sum(width for _, width in VARIABLES) == BYTES_PER_PARTICLE


def test_hacc_validate_off_skips_reads(world):
    app = HaccIO(n_nodes=2, ranks_per_node=2, particles_per_rank=10_000, validate=False)
    result = _run(world, app)
    posix = result.darshan_log.summary()["POSIX"]
    assert posix["POSIX_BYTES_READ"] == 0


def test_hacc_partial_io_preserves_bytes(world):
    """Splitting changes op counts, never byte totals."""
    app = HaccIO(
        n_nodes=2, ranks_per_node=2, particles_per_rank=10_000,
        partial_io_model=True,
    )
    result = _run(world, app)
    posix = result.darshan_log.summary()["POSIX"]
    expected = 4 * 10_000 * BYTES_PER_PARTICLE
    assert posix["POSIX_BYTES_WRITTEN"] == expected
    assert posix["POSIX_BYTES_READ"] == expected


def test_hacc_validation():
    with pytest.raises(ValueError):
        HaccIO(particles_per_rank=0)


# --------------------------------------------------------------- MPI-IO-TEST


def test_mpiio_test_independent_event_structure(world):
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=3, block_size=2**20, collective=False
    )
    result = _run(world, app)
    mpiio = result.darshan_log.summary()["MPIIO"]
    assert mpiio["MPIIO_INDEP_WRITES"] == 4 * 3
    assert mpiio["MPIIO_INDEP_READS"] == 4 * 3
    assert mpiio["MPIIO_BYTES_WRITTEN"] == 4 * 3 * 2**20


def test_mpiio_test_collective_uses_aggregators(world):
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=3, block_size=2**20, collective=True
    )
    result = _run(world, app)
    summary = result.darshan_log.summary()
    assert summary["MPIIO"]["MPIIO_COLL_WRITES"] == 12
    # Aggregators did the POSIX work: fewer, larger accesses.
    assert summary["POSIX"]["POSIX_WRITES"] < 12


def test_mpiio_collective_slower_than_independent_on_nfs():
    """Table IIa's NFS column ordering (data sieving tax)."""
    times = {}
    for coll in (True, False):
        world = World(WorldConfig(seed=5, quiet=True, n_compute_nodes=8))
        app = MpiIoTest(
            n_nodes=4, ranks_per_node=4, iterations=5, block_size=4 * 2**20,
            collective=coll, sync_per_iteration=False,
        )
        times[coll] = _run(world, app, fs="nfs", connector=False).runtime_s
    assert times[True] > times[False] * 1.2


def test_mpiio_collective_faster_than_independent_on_lustre():
    """Table IIa's Lustre column ordering (seek-free aggregation)."""
    times = {}
    for coll in (True, False):
        world = World(WorldConfig(seed=5, quiet=True, n_compute_nodes=8))
        app = MpiIoTest(
            n_nodes=4, ranks_per_node=4, iterations=5, block_size=4 * 2**20,
            collective=coll,
        )
        times[coll] = _run(world, app, fs="lustre", connector=False).runtime_s
    assert times[True] < times[False]


def test_mpiio_test_validation():
    with pytest.raises(ValueError):
        MpiIoTest(block_size=0)
    with pytest.raises(ValueError):
        MpiIoTest(iterations=0)


# -------------------------------------------------------------------- HMMER


def test_hmmer_event_counts_scale_with_families(world):
    app = Hmmer(ranks_per_node=4, n_families=20)
    result = _run(world, app)
    # Master publishes ~events_per_family per family plus file lifecycle.
    expected = 20 * app.events_per_family
    assert result.messages_published == pytest.approx(expected, rel=0.05)


def test_hmmer_events_concentrate_on_rank0(world):
    app = Hmmer(ranks_per_node=4, n_families=10)
    result = _run(world, app)
    rows = world.query_job(result.job_id).rows
    ranks = {r["rank"] for r in rows}
    assert ranks == {0}  # only the master does I/O


def test_hmmer_faster_on_lustre():
    times = {}
    for fs in ("nfs", "lustre"):
        world = World(WorldConfig(seed=5, quiet=True, n_compute_nodes=8))
        times[fs] = _run(
            world, Hmmer(ranks_per_node=8, n_families=60), fs=fs, connector=False
        ).runtime_s
    assert times["lustre"] < times["nfs"] / 1.5


def test_hmmer_validation():
    with pytest.raises(ValueError):
        Hmmer(n_families=0)
    with pytest.raises(ValueError):
        Hmmer(ranks_per_node=1)  # needs master + worker


# ---------------------------------------------------------------------- sw4


def test_sw4_writes_h5_snapshots(world):
    app = Sw4(
        n_nodes=2,
        ranks_per_node=2,
        grid=(16, 16, 16),
        timesteps=4,
        snapshot_every=2,
        compute_per_step_s=0.01,
    )
    result = _run(world, app)
    summary = result.darshan_log.summary()
    assert summary["H5F"]["H5F_OPENS"] == 4 * 2  # 4 ranks x 2 snapshots
    assert summary["H5D"]["H5D_WRITES"] == 8
    # Each rank writes its slab of the volume per snapshot.
    slab_bytes = (16 // 4) * 16 * 16 * 8
    assert summary["H5D"]["H5D_BYTES_WRITTEN"] == 8 * slab_bytes


def test_sw4_connector_messages_carry_hdf5_metadata(world):
    app = Sw4(
        n_nodes=2,
        ranks_per_node=2,
        grid=(16, 16, 16),
        timesteps=2,
        snapshot_every=2,
        compute_per_step_s=0.01,
    )
    result = _run(world, app)
    rows = world.query_job(result.job_id).rows
    h5d_writes = [r for r in rows if r["module"] == "H5D" and r["op"] == "write"]
    assert h5d_writes
    assert all(r["seg_data_set"] == "u" for r in h5d_writes)
    assert all(r["seg_ndims"] == 3 for r in h5d_writes)
    assert all(r["seg_npoints"] > 0 for r in h5d_writes)


def test_sw4_validation():
    with pytest.raises(ValueError):
        Sw4(grid=(0, 4, 4))
    with pytest.raises(ValueError):
        Sw4(timesteps=0)
    with pytest.raises(ValueError):
        Sw4(grid=(4, 4))


def test_sw4_grid_must_divide_by_ranks(world):
    app = Sw4(n_nodes=2, ranks_per_node=3, grid=(16, 8, 8), timesteps=2)
    with pytest.raises(ValueError, match="divide"):
        _run(world, app)


# ------------------------------------------------------------------ describe


def test_describe_run_sheet():
    app = MpiIoTest(n_nodes=4, ranks_per_node=8)
    d = app.describe()
    assert d["n_ranks"] == 32
    assert d["name"] == "mpi-io-test"
