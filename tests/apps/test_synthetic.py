"""Tests for the synthetic phase-structured workload generator."""

import pytest

from repro.apps import Phase, SyntheticWorkload
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job


@pytest.fixture
def world():
    return World(WorldConfig(seed=8, quiet=True, n_compute_nodes=4))


def _run(world, phases, **kw):
    app = SyntheticWorkload(phases, n_nodes=2, ranks_per_node=2)
    return run_job(world, app, "nfs", connector_config=ConnectorConfig(), **kw)


def test_phase_validation():
    with pytest.raises(ValueError):
        Phase(kind="dance")
    with pytest.raises(ValueError):
        Phase(kind="write", amount=0)
    with pytest.raises(ValueError):
        Phase(kind="write", op_bytes=0)
    with pytest.raises(ValueError):
        Phase(kind="write", file_mode="weird")
    with pytest.raises(ValueError):
        Phase(kind="write", collective=True, file_mode="per_rank")
    with pytest.raises(ValueError):
        SyntheticWorkload([])


def test_compute_phase_costs_time(world):
    result = _run(world, [Phase(kind="compute", amount=5.0)])
    assert result.runtime_s >= 5.0
    assert result.messages_published == 0  # no I/O, no events


def test_shared_write_phase_volume(world):
    result = _run(
        world,
        [Phase(kind="write", amount=3, op_bytes=2**20, file_mode="shared")],
    )
    posix = result.darshan_log.summary()["POSIX"]
    assert posix["POSIX_BYTES_WRITTEN"] == 4 * 3 * 2**20


def test_per_rank_files_created(world):
    result = _run(
        world,
        [Phase(kind="write", amount=2, op_bytes=1000, file_mode="per_rank", name="ckpt")],
    )
    fs = world.filesystem("nfs")
    paths = [p for p in fs.files if "ckpt" in p]
    assert len(paths) == 4  # one per rank


def test_collective_phase_uses_aggregators(world):
    result = _run(
        world,
        [Phase(kind="write", amount=2, op_bytes=2**20, collective=True)],
    )
    summary = result.darshan_log.summary()
    assert summary["MPIIO"]["MPIIO_COLL_WRITES"] == 8
    assert summary["POSIX"]["POSIX_WRITES"] < 8


def test_read_phase_self_seeds(world):
    result = _run(
        world,
        [Phase(kind="read", amount=3, op_bytes=1000, file_mode="per_rank")],
    )
    posix = result.darshan_log.summary()["POSIX"]
    assert posix["POSIX_BYTES_READ"] == 4 * 3 * 1000


def test_multi_phase_checkpoint_pattern(world):
    """compute -> collective checkpoint -> read-back, like a mini app."""
    phases = [
        Phase(kind="compute", amount=1.0),
        Phase(kind="write", amount=4, op_bytes=2**20, collective=True, name="ck"),
        Phase(kind="compute", amount=1.0),
        Phase(kind="read", amount=4, op_bytes=2**20, collective=True, name="ck2"),
    ]
    result = _run(world, phases)
    summary = result.darshan_log.summary()
    assert summary["MPIIO"]["MPIIO_COLL_WRITES"] == 16
    assert summary["MPIIO"]["MPIIO_COLL_READS"] == 16
    assert result.runtime_s > 2.0
    # Events are queryable like any app's.
    rows = world.query_job(result.job_id).rows
    assert rows
