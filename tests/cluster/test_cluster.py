"""Tests for nodes, network topology and the job scheduler."""

import pytest

from repro.cluster import (
    AllocationError,
    Cluster,
    ClusterSpec,
    JobScheduler,
    Network,
    Node,
    NodeSpec,
    VOLTRINO,
)
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    return Cluster(env, RngRegistry(1), ClusterSpec(n_compute_nodes=4))


# ----------------------------------------------------------------- Node


def test_node_cpu_capacity_from_spec(env):
    node = Node(env, "n1", NodeSpec(cores=16, threads_per_core=2))
    assert node.cpus.capacity == 32


def test_node_requires_name(env):
    with pytest.raises(ValueError):
        Node(env, "")


def test_node_spec_validation():
    with pytest.raises(ValueError):
        NodeSpec(cores=0)
    with pytest.raises(ValueError):
        NodeSpec(mem_bytes=0)


def test_daemon_registration(env):
    node = Node(env, "n1")
    sentinel = object()
    node.register_daemon("ldmsd", sentinel)
    assert node.daemon("ldmsd") is sentinel
    with pytest.raises(ValueError):
        node.register_daemon("ldmsd", object())
    with pytest.raises(KeyError):
        node.daemon("missing")


def test_node_memory_budget(env):
    node = Node(env, "n1", NodeSpec(mem_bytes=1000))

    def proc():
        yield node.memory.put(400)

    env.process(proc())
    env.run()
    assert node.mem_in_use == 400


# ---------------------------------------------------------------- Network


def test_network_latency_single_hop(env):
    net = Network(env)
    net.add_node("a")
    net.add_node("b")
    net.add_link("a", "b", latency_s=1e-3, bandwidth_bps=1e6)
    assert net.one_way_latency("a", "b") == pytest.approx(1e-3)


def test_network_transfer_time(env):
    net = Network(env)
    for n in "ab":
        net.add_node(n)
    net.add_link("a", "b", latency_s=0.001, bandwidth_bps=1000.0)

    def proc():
        result = yield from net.transfer("a", "b", 500)
        return result

    result = env.run(env.process(proc()))
    # 1 ms latency + 500 B / 1000 B/s = 0.501 s
    assert result.duration == pytest.approx(0.501)


def test_network_transfer_same_node_free(env):
    net = Network(env)
    net.add_node("a")

    def proc():
        result = yield from net.transfer("a", "a", 10**9)
        return result

    assert env.run(env.process(proc())).duration == 0.0


def test_network_multihop_latency_adds(env):
    net = Network(env)
    for n in "abc":
        net.add_node(n)
    net.add_link("a", "b", latency_s=0.5)
    net.add_link("b", "c", latency_s=0.25)
    assert net.one_way_latency("a", "c") == pytest.approx(0.75)
    assert net.path("a", "c") == ["a", "b", "c"]


def test_network_no_route_raises(env):
    net = Network(env)
    net.add_node("a")
    net.add_node("island")
    with pytest.raises(ValueError):
        net.path("a", "island")
    with pytest.raises(ValueError):
        net.path("a", "ghost")


def test_link_contention_serializes(env):
    net = Network(env)
    for n in "ab":
        net.add_node(n)
    net.add_link("a", "b", latency_s=0.0, bandwidth_bps=100.0, channels=1)
    ends = []

    def sender():
        yield from net.transfer("a", "b", 100)  # 1 s serialization
        ends.append(env.now)

    env.process(sender())
    env.process(sender())
    env.run()
    assert ends == [pytest.approx(1.0), pytest.approx(2.0)]


def test_negative_transfer_rejected(env):
    net = Network(env)
    net.add_node("a")

    def proc():
        yield from net.transfer("a", "a", -1)

    with pytest.raises(ValueError):
        env.run(env.process(proc()))


def test_link_validation(env):
    from repro.cluster.network import Link

    with pytest.raises(ValueError):
        Link(env, latency_s=-1, bandwidth_bps=1)
    with pytest.raises(ValueError):
        Link(env, latency_s=0, bandwidth_bps=0)


# ---------------------------------------------------------------- Cluster


def test_cluster_builds_paper_topology(env):
    cluster = Cluster(env, RngRegistry(0), VOLTRINO)
    assert len(cluster.compute_nodes) == 24
    assert cluster.compute_nodes[0].name == "nid00001"
    assert cluster.node("head") is cluster.head_node
    assert cluster.node("shirley") is cluster.analysis_node
    # Compute -> head -> shirley is the aggregation route.
    assert cluster.network.path("nid00001", "shirley") == [
        "nid00001",
        "head",
        "shirley",
    ]


def test_cluster_unknown_node_raises(cluster):
    with pytest.raises(KeyError):
        cluster.node("nid99999")


def test_cluster_spec_validation():
    with pytest.raises(ValueError):
        ClusterSpec(n_compute_nodes=0)


def test_filesystem_attachment(cluster):
    fs = object()
    cluster.attach_filesystem("nfs", fs)
    assert cluster.filesystem("nfs") is fs
    assert "nfs" in cluster.filesystems
    with pytest.raises(ValueError):
        cluster.attach_filesystem("nfs", object())
    with pytest.raises(KeyError):
        cluster.filesystem("lustre")


# ---------------------------------------------------------------- Scheduler


def test_scheduler_sequential_job_ids(cluster):
    s = cluster.scheduler
    j1 = s.submit("app-a", 2)
    j2 = s.submit("app-b", 1)
    assert j2.job_id == j1.job_id + 1
    assert s.free_nodes == 1


def test_scheduler_exclusive_allocation(cluster):
    s = cluster.scheduler
    j1 = s.submit("big", 4)
    with pytest.raises(AllocationError):
        s.submit("more", 1)
    s.start(j1, 10.0)
    s.complete(j1, 110.0)
    assert s.free_nodes == 4
    assert j1.runtime == 100.0
    assert s.history == [j1]


def test_scheduler_validation(cluster):
    s = cluster.scheduler
    with pytest.raises(ValueError):
        s.submit("zero", 0)
    job = s.submit("ok", 1)
    with pytest.raises(RuntimeError):
        s.complete(job, 5.0)  # never started
    foreign = type(job)(job_id=-1, name="x", nodes=[], uid=0)
    with pytest.raises(RuntimeError):
        s.start(foreign, 0.0)
    with pytest.raises(RuntimeError):
        job.runtime  # not finished


def test_job_metadata_and_flags(cluster):
    job = cluster.scheduler.submit("meta", 2, uid=12345)
    assert job.uid == 12345
    assert job.n_nodes == 2
    assert not job.finished
    cluster.scheduler.start(job, 0.0)
    cluster.scheduler.complete(job, 1.0)
    assert job.finished
