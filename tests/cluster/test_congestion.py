"""Tests for the network-congestion variability source."""

import numpy as np
import pytest

from repro.cluster import Network
from repro.fs import LoadProcess
from repro.sim import Environment


def _quiet_load(base=1.0):
    return LoadProcess(
        np.random.default_rng(0),
        base=base,
        diurnal_amplitude=0,
        noise_sigma=0,
        n_modes=0,
        incident_rate=0,
    )


def _transfer_time(env, net, nbytes):
    def proc():
        result = yield from net.transfer("a", "b", nbytes)
        return result.duration

    return env.run(env.process(proc()))


def _make_net(env):
    net = Network(env)
    for n in "ab":
        net.add_node(n)
    net.add_link("a", "b", latency_s=0.001, bandwidth_bps=1e6)
    return net


def test_no_congestion_by_default():
    env = Environment()
    net = _make_net(env)
    assert net.congestion_factor() == 1.0


def test_congestion_scales_transfer_time():
    env1 = Environment()
    net1 = _make_net(env1)
    base = _transfer_time(env1, net1, 10**6)

    env2 = Environment()
    net2 = _make_net(env2)
    net2.set_congestion(_quiet_load(base=3.0))
    congested = _transfer_time(env2, net2, 10**6)
    assert congested == pytest.approx(3 * base, rel=0.01)


def test_congestion_source_validated():
    env = Environment()
    net = _make_net(env)
    with pytest.raises(TypeError):
        net.set_congestion(object())


def test_congestion_slows_stream_delivery_not_application():
    """Congestion delays monitoring delivery; the app-side publish
    cost is unchanged (push-based decoupling)."""
    from repro.cluster import Cluster, ClusterSpec
    from repro.ldms import Ldmsd
    from repro.sim import RngRegistry

    def build(congested):
        env = Environment()
        cluster = Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=2))
        if congested:
            cluster.network.set_congestion(_quiet_load(base=50.0))
        src = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
        dst = Ldmsd(env, cluster.head_node, cluster.network, name="agg")
        src.add_stream_forward("t", dst)
        arrivals = []
        dst.streams.subscribe("t", lambda m: arrivals.append(env.now - m.publish_time))
        publish_cost = []

        def app():
            t0 = env.now
            yield from src.publish("t", {"x": "y" * 1000})
            publish_cost.append(env.now - t0)

        env.process(app())
        env.run()
        return publish_cost[0], arrivals[0]

    cost_free, latency_free = build(congested=False)
    cost_busy, latency_busy = build(congested=True)
    assert cost_busy == pytest.approx(cost_free)  # app unaffected
    assert latency_busy > latency_free * 5  # delivery delayed
