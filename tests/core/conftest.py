"""Fixtures assembling the full pipeline on a small cluster."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.core import ConnectorConfig, DarshanLdmsConnector
from repro.darshan import DarshanRuntime
from repro.dsos import DsosClient, DsosCluster, DsosStreamStore
from repro.fs import LoadProcess, NFSFileSystem, NFSParams
from repro.fs.posix import IOContext, PosixClient
from repro.ldms import AggregationFabric
from repro.sim import Environment, RngRegistry

TAG = "darshanConnector"


@pytest.fixture
def env():
    return Environment(initial_time=1_650_000_000.0)


@pytest.fixture
def cluster(env):
    return Cluster(env, RngRegistry(11), ClusterSpec(n_compute_nodes=2))


@pytest.fixture
def nfs(env, cluster):
    reg = cluster.rng
    quiet = LoadProcess(
        reg.stream("load"),
        diurnal_amplitude=0,
        noise_sigma=0,
        n_modes=0,
        incident_rate=0,
    )
    fs = NFSFileSystem(env, quiet, reg.stream("nfs"), NFSParams(cv=0.0))
    cluster.attach_filesystem("nfs", fs)
    return fs


@pytest.fixture
def fabric(cluster):
    return AggregationFabric(cluster, TAG)


@pytest.fixture
def dsos_client():
    return DsosClient(DsosCluster("shirley", n_daemons=2))


@pytest.fixture
def dsos_store(fabric, dsos_client):
    return DsosStreamStore(fabric.l2, TAG, dsos_client)


@pytest.fixture
def runtime(env):
    return DarshanRuntime(
        env, job_id=259903, uid=99066, exe="/apps/test-app", nprocs=1
    )


@pytest.fixture
def posix(env, nfs, cluster, runtime):
    ctx = IOContext(
        job_id=259903,
        uid=99066,
        rank=0,
        node_name=cluster.compute_nodes[0].name,
        exe="/apps/test-app",
        app="test-app",
    )
    client = PosixClient(env, nfs, ctx)
    runtime.instrument(client)
    return client


@pytest.fixture
def connector(runtime, fabric):
    return DarshanLdmsConnector(runtime, fabric.daemon_for, ConnectorConfig())
