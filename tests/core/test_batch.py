"""Unit tests for the columnar record-batch spine building blocks.

Covers the pieces ``tests/property/test_columnar_properties.py`` drives
only end to end: the RecordBatch columns, the lazy ColumnarMessage view
(eager vstrs and the lazy re-render fallback), and the virtual
forwarder's batching edges — a single-event batch and a burst split
across the ``batch_size`` window.
"""

import json

from repro.core import ConnectorConfig, MessageBuilder
from repro.core.batch import ColumnarMessage, RecordBatch
from repro.core.json_format import ColumnarFormatted
from repro.darshan.runtime import IOEvent
from repro.experiments.world import World, WorldConfig
from repro.fs.posix import IOContext


def _event(op="write", offset=0, nbytes=512):
    ctx = IOContext(
        job_id=77, uid=1000, rank=3, node_name="nid00001",
        exe="/apps/bench", app="bench",
    )
    return IOEvent(
        module="POSIX", op=op, path="/scratch/a.dat", record_id=12345,
        context=ctx, offset=offset, nbytes=nbytes,
        start=10.0, end=10.5, cnt=4, switches=1, flushes=-1,
        max_byte=offset + nbytes - 1,
    )


def _columnar(event, *, lazy=False):
    builder = MessageBuilder(fast=True)
    formatted = builder.format_columnar(event, lazy=lazy)
    assert type(formatted) is ColumnarFormatted
    return formatted


# ------------------------------------------------------------ RecordBatch


def test_record_batch_columns():
    batch = RecordBatch()
    assert len(batch) == 0 and batch.total_bytes == 0
    f = _columnar(_event())
    batch.append("1:0:0", 100, f.shape, f.values, 2.5)
    batch.append("1:0:1", 250, f.shape, f.values, 3.0)
    assert len(batch) == 2
    assert batch.total_bytes == 350
    assert batch.trace_ids == ["1:0:0", "1:0:1"]
    assert batch.times == [2.5, 3.0]
    assert batch.shapes[0] is f.shape


# -------------------------------------------------------- ColumnarMessage


def test_columnar_message_matches_reference_payload():
    event = _event()
    f = _columnar(event)
    reference = MessageBuilder(fast=False).format(event)
    msg = ColumnarMessage(
        "darshanConnector", f.shape, f.values, f.vstrs, f.payload_chars,
        src_node="nid00001", publish_time=1.0, trace_id="77:3:0",
    )
    assert msg.size_bytes == len(reference.payload)
    assert msg.payload == reference.payload
    assert msg.parsed == json.loads(reference.payload)
    # Cached after first access.
    assert msg.payload is msg.payload


def test_columnar_message_lazy_rerenders_from_values():
    event = _event()
    f = _columnar(event, lazy=True)
    assert f.vstrs is None  # lazy mode skipped the slot strings
    eager = _columnar(event)
    assert f.numeric_conversions == eager.numeric_conversions
    assert f.payload_chars == eager.payload_chars
    assert f.format_cost_s == eager.format_cost_s
    msg = ColumnarMessage(
        "darshanConnector", f.shape, f.values, None, f.payload_chars,
    )
    reference = MessageBuilder(fast=False).format(event)
    assert msg.payload == reference.payload
    assert msg.parsed == json.loads(reference.payload)


def test_render_meta_matches_render_parts():
    for op, nbytes in (("write", 0), ("read", 7), ("write", 2**30 + 17)):
        event = _event(op=op, nbytes=nbytes, offset=2**40)
        shape = _columnar(event).shape
        values = MessageBuilder._values(event)
        vstrs, numeric, chars = shape.render_parts(values)
        assert shape.render_meta(values) == (numeric, chars)
        assert chars == len(shape.payload(vstrs))


# ------------------------------------------------ virtual forwarder edges


def _armed_world():
    world = World(WorldConfig(
        seed=7, quiet=True, n_compute_nodes=2, fast_lane=True, columnar=True,
    ))
    assert world.spine is not None and world.spine.armed
    return world


def _stuff_rows(world, vfwd, n):
    f = _columnar(_event())
    for i in range(n):
        vfwd.outbox.append((f"77:3:{i}", 100, f.shape, f.values, 0.0))


def test_single_event_batch_drains_whole():
    world = _armed_world()
    spine = world.spine
    vfwd = next(iter(spine._l0.values()))
    _stuff_rows(world, vfwd, 1)
    vfwd.drain(0.0)
    assert not vfwd.outbox          # the lone row left immediately
    assert vfwd.tracked             # completion entry on the heap
    spine.drain_all()
    assert spine.stats.record_batches >= 1
    assert spine.stats.max_batch_rows == 1
    assert world.store.objects_stored == 1


def test_burst_splits_across_batch_size_window():
    world = _armed_world()
    spine = world.spine
    vfwd = next(iter(spine._l0.values()))
    cap = vfwd.fwd.batch_size
    _stuff_rows(world, vfwd, cap + 6)
    vfwd.drain(0.0)
    # First window takes exactly batch_size rows; the tail waits for
    # the transfer to complete.
    assert len(vfwd.outbox) == 6
    spine.drain_all()
    assert not vfwd.outbox
    assert spine.stats.batch_rows == cap + 6
    assert spine.stats.max_batch_rows == cap
    assert world.store.objects_stored == cap + 6


def test_columnar_requires_fast_lane():
    import pytest

    with pytest.raises(ValueError, match="fast_lane"):
        ConnectorConfig(columnar=True, fast_lane=False)
    with pytest.raises(ValueError, match="fast_lane"):
        World(WorldConfig(
            seed=1, quiet=True, n_compute_nodes=2,
            fast_lane=False, columnar=True,
        ))
