"""Connector tests: sampling, cost charging, end-to-end pipeline."""

import pytest

from repro.core import ConnectorConfig, DarshanLdmsConnector, EventSampler
from repro.core.json_format import FormatCostModel
from repro.darshan import DarshanConfig, DarshanRuntime
from tests.core.conftest import TAG


def _io_script(posix, n_writes=3):
    def proc():
        h = yield from posix.open("/scratch/out.dat", "w")
        for _ in range(n_writes):
            yield from posix.write(h, 2**20)
        yield from posix.read(h, 2**20, offset=0)
        yield from posix.close(h)

    return proc()


# --------------------------------------------------------------- sampler


def test_sampler_n1_admits_everything():
    s = EventSampler(1)

    class E:
        op = "write"
        module = "POSIX"

        class context:
            rank = 0

    for _ in range(10):
        assert s.admit(E())
    assert s.sampling_fraction == 1.0


def test_sampler_every_n(posix, runtime, env, fabric):
    config = ConnectorConfig(sample_every=3)
    connector = DarshanLdmsConnector(runtime, fabric.daemon_for, config)
    env.process(_io_script(posix, n_writes=9))
    env.run()
    # open + close always published; 10 data ops (9w+1r) sampled 1-in-3.
    # Data events: k % 3 == 1 -> events 1,4,7,10 = 4 admitted.
    assert connector.stats.messages_published == 2 + 4
    assert connector.stats.messages_suppressed == 6
    assert connector.sampler.sampling_fraction < 1.0


def test_sampler_validation():
    with pytest.raises(ValueError):
        EventSampler(0)
    with pytest.raises(ValueError):
        ConnectorConfig(sample_every=0)


# -------------------------------------------------------------- connector


def test_connector_requires_modified_darshan(env, fabric):
    vanilla = DarshanRuntime(
        env,
        job_id=1,
        uid=1,
        exe="/x",
        nprocs=1,
        config=DarshanConfig(absolute_timestamps=False),
    )
    with pytest.raises(ValueError, match="absolute-timestamp"):
        DarshanLdmsConnector(vanilla, fabric.daemon_for)


def test_connector_publishes_all_events(env, posix, runtime, fabric, connector):
    env.process(_io_script(posix))
    env.run()
    assert connector.stats.events_seen == 6  # open + 3w + 1r + close
    assert connector.stats.messages_published == 6
    assert connector.stats.bytes_published > 0
    assert connector.stats.numeric_conversions == 6 * 17


def test_connector_charges_format_cost_to_app(env, posix, runtime, cluster, fabric, nfs):
    """The same I/O takes longer with the connector than without."""
    # Run once WITHOUT connector.
    env.process(_io_script(posix, n_writes=5))
    env.run()
    t_plain = env.now - 1_650_000_000.0

    # Fresh world WITH connector, expensive formatting to be visible.
    from repro.sim import Environment
    from tests.core import conftest

    env2 = Environment(initial_time=1_650_000_000.0)
    from repro.cluster import Cluster, ClusterSpec
    from repro.fs import LoadProcess, NFSFileSystem, NFSParams
    from repro.fs.posix import IOContext, PosixClient
    from repro.ldms import AggregationFabric
    from repro.sim import RngRegistry

    cluster2 = Cluster(env2, RngRegistry(11), ClusterSpec(n_compute_nodes=2))
    reg = cluster2.rng
    quiet = LoadProcess(
        reg.stream("load"), diurnal_amplitude=0, noise_sigma=0, n_modes=0, incident_rate=0
    )
    fs2 = NFSFileSystem(env2, quiet, reg.stream("nfs"), NFSParams(cv=0.0))
    runtime2 = DarshanRuntime(env2, job_id=1, uid=1, exe="/x", nprocs=1)
    ctx = IOContext(1, 1, 0, cluster2.compute_nodes[0].name, "/x", "t")
    posix2 = PosixClient(env2, fs2, ctx)
    runtime2.instrument(posix2)
    fabric2 = AggregationFabric(cluster2, TAG)
    config = ConnectorConfig(
        cost_model=FormatCostModel(per_numeric_field_s=5e-3)  # exaggerated
    )
    connector2 = DarshanLdmsConnector(runtime2, fabric2.daemon_for, config)
    env2.process(_io_script(posix2, n_writes=5))
    env2.run()
    t_with = env2.now - 1_650_000_000.0
    assert t_with > t_plain
    assert connector2.stats.format_seconds > 0.3  # 7 events * 17 * 5 ms


def test_connector_none_mode_near_zero_overhead(env, posix, runtime, fabric):
    config = ConnectorConfig(format_mode="none")
    connector = DarshanLdmsConnector(runtime, fabric.daemon_for, config)
    env.process(_io_script(posix))
    env.run()
    assert connector.stats.messages_published == 6
    assert connector.stats.numeric_conversions == 0
    assert connector.stats.format_seconds < 1e-4


def test_connector_config_validation():
    with pytest.raises(ValueError):
        ConnectorConfig(format_mode="yaml")


def test_message_rate(connector):
    connector.stats.messages_published = 100
    assert connector.message_rate(50.0) == pytest.approx(2.0)
    with pytest.raises(ValueError):
        connector.message_rate(0)


# ----------------------------------------------------------- end-to-end


def test_end_to_end_pipeline_app_to_dsos(
    env, posix, runtime, fabric, connector, dsos_store, dsos_client
):
    """App I/O -> Darshan -> connector -> streams -> aggregation -> DSOS."""
    env.process(_io_script(posix, n_writes=4))
    env.run()

    assert connector.stats.messages_published == 7
    totals = fabric.totals()
    assert totals.received_at_l2 == 7
    assert dsos_store.objects_stored == 7
    assert dsos_client.count("darshan_data") == 7

    # Query it back the way the paper's analyses do: one job, one rank,
    # ordered by time.
    res = dsos_client.query("darshan_data", "job_rank_time", prefix=(259903, 0))
    assert len(res) == 7
    stamps = [r["timestamp"] for r in res.rows]
    assert stamps == sorted(stamps)
    assert stamps[0] >= 1_650_000_000.0  # absolute epoch timestamps
    ops = [r["op"] for r in res.rows]
    assert ops[0] == "open"
    assert ops[-1] == "close"
    assert ops.count("write") == 4
    # MET/MOD typing survived the pipeline.
    types = {r["op"]: r["type"] for r in res.rows}
    assert types["open"] == "MET"
    assert types["write"] == "MOD"
    # Byte counts survive end to end.
    total_written = sum(r["seg_len"] for r in res.rows if r["op"] == "write")
    assert total_written == 4 * 2**20


def test_end_to_end_latency_bounded(env, posix, runtime, fabric, connector, dsos_store):
    """Events land in the database milliseconds after they happen —
    the run-time property the whole paper is about."""
    arrival_gaps = []
    original = dsos_store.on_message

    def timing_wrapper(message):
        arrival_gaps.append(env.now - message.publish_time)
        original(message)

    fabric.l2.streams.unsubscribe(TAG, original)
    fabric.l2.streams.subscribe(TAG, timing_wrapper)

    env.process(_io_script(posix))
    env.run()
    assert arrival_gaps, "no messages arrived"
    assert max(arrival_gaps) < 0.1  # well under run time scale
