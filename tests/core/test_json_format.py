"""Tests for message assembly and the formatting cost model."""

import json

import pytest

from repro.core import (
    FormatCostModel,
    MESSAGE_FIELDS,
    METRIC_DEFINITIONS,
    MessageBuilder,
    SEG_FIELDS,
)
from repro.darshan.runtime import IOEvent
from repro.fs.posix import IOContext


def _event(op="write", module="POSIX", hdf5=None, **kw):
    ctx = IOContext(
        job_id=259903,
        uid=99066,
        rank=3,
        node_name="nid00046",
        exe="/apps/mpi-io-test",
        app="mpi-io-test",
    )
    defaults = dict(
        module=module,
        op=op,
        path="/scratch/mpi-io-test.tmp.dat",
        record_id=1601543006480906062,
        context=ctx,
        offset=0,
        nbytes=16777216,
        start=1650000000.0,
        end=1650000000.125,
        cnt=2,
        switches=0,
        flushes=-1,
        max_byte=16777215,
        hdf5=hdf5,
    )
    defaults.update(kw)
    return IOEvent(**defaults)


def test_message_field_order_matches_figure3():
    msg = MessageBuilder().message_dict(_event())
    assert tuple(msg) == MESSAGE_FIELDS
    assert tuple(msg["seg"][0]) == SEG_FIELDS


def test_metric_definitions_cover_message_fields():
    for f in MESSAGE_FIELDS:
        assert f in METRIC_DEFINITIONS
    for f in SEG_FIELDS:
        assert f"seg:{f}" in METRIC_DEFINITIONS or f in ("off", "len", "dur")


def test_open_event_is_met_with_absolute_paths():
    msg = MessageBuilder().message_dict(_event(op="open", nbytes=0, max_byte=-1))
    assert msg["type"] == "MET"
    assert msg["exe"] == "/apps/mpi-io-test"
    assert msg["file"] == "/scratch/mpi-io-test.tmp.dat"


def test_data_event_is_mod_with_na_paths():
    msg = MessageBuilder().message_dict(_event(op="write"))
    assert msg["type"] == "MOD"
    assert msg["exe"] == "N/A"
    assert msg["file"] == "N/A"


def test_posix_event_has_hdf5_sentinels():
    msg = MessageBuilder().message_dict(_event())
    seg = msg["seg"][0]
    assert seg["data_set"] == "N/A"
    assert seg["pt_sel"] == -1
    assert seg["ndims"] == -1


def test_h5d_event_carries_dataset_metadata():
    h5 = {
        "data_set": "u",
        "ndims": 3,
        "npoints": 4096,
        "pt_sel": 0,
        "reg_hslab": 2,
        "irreg_hslab": 0,
    }
    msg = MessageBuilder().message_dict(_event(module="H5D", hdf5=h5))
    seg = msg["seg"][0]
    assert seg["data_set"] == "u"
    assert seg["ndims"] == 3
    assert seg["npoints"] == 4096
    assert seg["reg_hslab"] == 2


def test_seg_timestamp_is_absolute_end_time():
    msg = MessageBuilder().message_dict(_event())
    seg = msg["seg"][0]
    assert seg["timestamp"] == 1650000000.125
    assert seg["dur"] == pytest.approx(0.125)
    assert seg["len"] == 16777216


def test_format_json_round_trips():
    fm = MessageBuilder().format(_event())
    parsed = json.loads(fm.payload)
    assert parsed["module"] == "POSIX"
    assert parsed["seg"][0]["len"] == 16777216


def test_numeric_field_count():
    builder = MessageBuilder()
    msg = builder.message_dict(_event())
    n = builder.count_numeric_fields(msg)
    # Top level: uid, job_id, rank, record_id, max_byte, switches,
    # flushes, cnt = 8; seg: pt_sel, irreg, reg, ndims, npoints, off,
    # len, dur, timestamp = 9.  Total 17.
    assert n == 17


def test_format_cost_scales_with_numeric_fields():
    model = FormatCostModel(base_s=0.0, per_numeric_field_s=1e-5, per_char_s=0.0)
    assert model.cost(10, 0) == pytest.approx(1e-4)
    assert model.cost(20, 0) == pytest.approx(2e-4)
    with pytest.raises(ValueError):
        model.cost(-1, 0)


def test_format_none_mode_is_cheap():
    builder = MessageBuilder()
    fm_json = builder.format(_event(), mode="json")
    fm_none = builder.format(_event(), mode="none")
    assert fm_none.format_cost_s < fm_json.format_cost_s / 50
    assert fm_none.numeric_conversions == 0
    assert fm_none.payload == ""


def test_format_unknown_mode_rejected():
    with pytest.raises(ValueError):
        MessageBuilder().format(_event(), mode="xml")


def test_default_cost_magnitude_matches_paper():
    """~17 numeric fields × 25 µs ≈ 0.43 ms/event, the HMMER-implied cost."""
    fm = MessageBuilder().format(_event())
    assert 2e-4 < fm.format_cost_s < 1e-3


# -- fast-lane golden tests ---------------------------------------------------
#
# The template-compiled serializer memoizes per message *shape*: the
# static-field prefix, the numeric-conversion count, and (for the parsed
# sidecar) dict templates.  These goldens pin every cached quantity to a
# fresh slow-path walk for each shape the connector emits: MET (open,
# absolute paths), MOD (data, N/A paths) and the HDF5 segment variant.

_GOLDEN_SHAPES = {
    "met": dict(op="open", nbytes=0, max_byte=-1),
    "mod": dict(op="write"),
    "hdf5": dict(
        module="H5D",
        hdf5={
            "data_set": "u", "ndims": 3, "npoints": 4096,
            "pt_sel": 0, "reg_hslab": 2, "irreg_hslab": 0,
        },
    ),
}


@pytest.mark.parametrize("shape", sorted(_GOLDEN_SHAPES))
def test_fast_lane_payload_matches_slow_walk(shape):
    event = _event(**_GOLDEN_SHAPES[shape])
    fast = MessageBuilder(fast=True).format(event)
    slow = MessageBuilder(fast=False).format(event)
    assert fast.payload == slow.payload  # byte-identical serialization
    assert fast.format_cost_s == slow.format_cost_s


@pytest.mark.parametrize("shape", sorted(_GOLDEN_SHAPES))
def test_fast_lane_numeric_count_matches_fresh_walk(shape):
    event = _event(**_GOLDEN_SHAPES[shape])
    builder = MessageBuilder(fast=True)
    # Warm the shape cache, then format again so the memoized count is
    # what gets compared — not the first-call compile.
    builder.format(event)
    fm = builder.format(event)
    fresh = MessageBuilder.count_numeric_fields(
        MessageBuilder(fast=False).message_dict(event)
    )
    assert fm.numeric_conversions == fresh


@pytest.mark.parametrize("shape", sorted(_GOLDEN_SHAPES))
def test_fast_lane_parsed_sidecar_equals_json_loads(shape):
    event = _event(**_GOLDEN_SHAPES[shape])
    builder = MessageBuilder(fast=True)
    builder.format(event)  # warm the cache; second call uses templates
    fm = builder.format(event)
    assert fm.parsed == json.loads(fm.payload)
    # Key order matters downstream (Figure-3 order is part of the
    # payload contract) — the sidecar must preserve it too.
    assert list(fm.parsed) == list(json.loads(fm.payload))
    assert list(fm.parsed["seg"][0]) == list(json.loads(fm.payload)["seg"][0])


def test_slow_lane_has_no_parsed_sidecar():
    fm = MessageBuilder(fast=False).format(_event())
    assert fm.parsed is None
