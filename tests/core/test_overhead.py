"""Tests for the Table II overhead arithmetic."""

import pytest

from repro.core import OverheadResult, mean_confidence_interval, percent_overhead


def test_percent_overhead_positive():
    assert percent_overhead(100.0, 110.0) == pytest.approx(10.0)


def test_percent_overhead_negative_like_paper():
    # Table IIa NFS collective: 1376.67 -> 1355.35 = -1.55 %.
    assert percent_overhead(1376.67, 1355.35) == pytest.approx(-1.55, abs=0.01)


def test_percent_overhead_validation():
    with pytest.raises(ValueError):
        percent_overhead(0.0, 10.0)


def test_mean_ci_basics():
    mean, half = mean_confidence_interval([10.0, 12.0, 11.0, 9.0, 13.0])
    assert mean == pytest.approx(11.0)
    assert half > 0


def test_mean_ci_single_sample():
    mean, half = mean_confidence_interval([5.0])
    assert (mean, half) == (5.0, 0.0)


def test_mean_ci_constant_samples():
    mean, half = mean_confidence_interval([3.0, 3.0, 3.0])
    assert (mean, half) == (3.0, 0.0)


def test_mean_ci_empty_rejected():
    with pytest.raises(ValueError):
        mean_confidence_interval([])


def test_mean_ci_width_shrinks_with_samples():
    import numpy as np

    rng = np.random.default_rng(0)
    small = rng.normal(10, 1, size=5)
    big = rng.normal(10, 1, size=100)
    _, half_small = mean_confidence_interval(small)
    _, half_big = mean_confidence_interval(big)
    assert half_big < half_small


def test_overhead_result_row():
    r = OverheadResult(
        label="collective",
        filesystem="nfs",
        darshan_runtimes=(100.0, 102.0, 98.0, 101.0, 99.0),
        connector_runtimes=(110.0, 111.0, 109.0, 112.0, 108.0),
        avg_messages=50390,
        message_rate=37.0,
    )
    assert r.darshan_mean == pytest.approx(100.0)
    assert r.connector_mean == pytest.approx(110.0)
    assert r.overhead_percent == pytest.approx(10.0)
    row = r.as_row()
    assert row["avg_messages"] == 50390
    assert row["overhead_percent"] == pytest.approx(10.0)
