"""Fixtures: a POSIX client instrumented by a Darshan runtime."""

import pytest

from repro.darshan import DarshanConfig, DarshanRuntime
from repro.fs import LoadProcess, LustreFileSystem, LustreParams, NFSFileSystem, NFSParams
from repro.fs.posix import IOContext, PosixClient, StdioClient
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment(initial_time=1_650_000_000.0)  # epoch-like clock


@pytest.fixture
def rng():
    return RngRegistry(99)


@pytest.fixture
def quiet_load(rng):
    return LoadProcess(
        rng.stream("load"),
        diurnal_amplitude=0,
        noise_sigma=0,
        n_modes=0,
        incident_rate=0,
    )


@pytest.fixture
def nfs(env, rng, quiet_load):
    return NFSFileSystem(env, quiet_load, rng.stream("nfs"), NFSParams(cv=0.0))


@pytest.fixture
def lustre(env, rng, quiet_load):
    return LustreFileSystem(env, quiet_load, rng.stream("lustre"), LustreParams(cv=0.0))


@pytest.fixture
def context():
    return IOContext(
        job_id=259903,
        uid=99066,
        rank=3,
        node_name="nid00046",
        exe="/apps/mpi-io-test",
        app="mpi-io-test",
    )


@pytest.fixture
def runtime(env):
    return DarshanRuntime(
        env, job_id=259903, uid=99066, exe="/apps/mpi-io-test", nprocs=4
    )


@pytest.fixture
def posix(env, nfs, context, runtime):
    client = PosixClient(env, nfs, context)
    runtime.instrument(client)
    return client


class CollectingListener:
    """Run-time event listener that captures every IOEvent."""

    def __init__(self):
        self.events = []

    def on_io_event(self, event):
        self.events.append(event)
        return
        yield  # pragma: no cover


def run(env, gen):
    return env.run(env.process(gen))
