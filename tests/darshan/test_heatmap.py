"""Tests for the HEATMAP module."""

import numpy as np
import pytest

from repro.darshan.heatmap import Heatmap


def test_record_single_bin():
    hm = Heatmap(n_bins=8, initial_bin_width_s=1.0)
    hm.record(0, "write", 100, 0.2, 0.8)
    assert hm.grid(0, "write")[0] == pytest.approx(100)
    assert hm.grid(0, "write")[1:].sum() == 0


def test_record_spans_bins_proportionally():
    hm = Heatmap(n_bins=8, initial_bin_width_s=1.0)
    hm.record(0, "read", 100, 0.5, 2.5)  # covers half of bin0, bin1, half of bin2
    grid = hm.grid(0, "read")
    assert grid[0] == pytest.approx(25)
    assert grid[1] == pytest.approx(50)
    assert grid[2] == pytest.approx(25)


def test_bin_width_doubles_to_fit():
    hm = Heatmap(n_bins=4, initial_bin_width_s=1.0)
    hm.record(0, "write", 10, 0.0, 1.0)
    assert hm.bin_width_s == 1.0
    hm.record(0, "write", 20, 7.5, 7.9)  # beyond 4 bins -> double
    assert hm.bin_width_s == 2.0
    grid = hm.grid(0, "write")
    assert grid[0] == pytest.approx(10)  # folded into wider bin 0
    assert grid[3] == pytest.approx(20)
    assert hm.conservation_check()


def test_repeated_doubling():
    hm = Heatmap(n_bins=4, initial_bin_width_s=0.5)
    hm.record(0, "write", 5, 0.0, 0.1)
    hm.record(0, "write", 5, 100.0, 100.1)
    assert hm.bin_width_s >= 100.0 / 4
    assert hm.conservation_check()


def test_per_rank_per_op_separation():
    hm = Heatmap(n_bins=8, initial_bin_width_s=1.0)
    hm.record(0, "write", 10, 0.0, 0.5)
    hm.record(1, "write", 20, 0.0, 0.5)
    hm.record(0, "read", 30, 0.0, 0.5)
    assert hm.ranks() == [0, 1]
    assert hm.grid(0, "write").sum() == pytest.approx(10)
    assert hm.grid(1, "write").sum() == pytest.approx(20)
    assert hm.grid(0, "read").sum() == pytest.approx(30)
    assert hm.grid(2, "write").sum() == 0  # silent rank


def test_matrix_shape():
    hm = Heatmap(n_bins=16, initial_bin_width_s=1.0)
    for r in range(3):
        hm.record(r, "write", 10, 0.0, 1.0)
    m = hm.matrix("write")
    assert m.shape == (3, 16)
    assert hm.matrix("read").shape == (3, 16)
    empty = Heatmap(n_bins=16)
    assert empty.matrix("write").shape == (0, 16)


def test_ignores_non_data_ops_and_zero_bytes():
    hm = Heatmap()
    hm.record(0, "open", 100, 0.0, 1.0)
    hm.record(0, "write", 0, 0.0, 1.0)
    assert hm.ranks() == []


def test_bad_interval_rejected():
    hm = Heatmap()
    with pytest.raises(ValueError):
        hm.record(0, "write", 10, -1.0, 0.0)
    with pytest.raises(ValueError):
        hm.record(0, "write", 10, 2.0, 1.0)


def test_constructor_validation():
    with pytest.raises(ValueError):
        Heatmap(n_bins=3)  # odd
    with pytest.raises(ValueError):
        Heatmap(n_bins=0)
    with pytest.raises(ValueError):
        Heatmap(initial_bin_width_s=0)


def test_payload_roundtrip():
    hm = Heatmap(n_bins=8, initial_bin_width_s=1.0)
    hm.record(0, "write", 100, 0.0, 3.0)
    hm.record(1, "read", 50, 2.0, 4.0)
    back = Heatmap.from_payload(hm.to_payload())
    assert back.bin_width_s == hm.bin_width_s
    np.testing.assert_allclose(back.grid(0, "write"), hm.grid(0, "write"))
    np.testing.assert_allclose(back.grid(1, "read"), hm.grid(1, "read"))


def test_heatmap_populated_by_runtime(tmp_path):
    """Integration: app run -> heatmap in the log -> survives disk."""
    from repro.apps import MpiIoTest
    from repro.darshan import parse_log, write_log
    from repro.experiments import World, WorldConfig, run_job

    world = World(WorldConfig(seed=2, quiet=True, n_compute_nodes=4))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=3, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs")
    hm = result.darshan_log.heatmap
    assert hm is not None
    assert hm.ranks() == [0, 1, 2, 3]
    # Bytes written by the app appear in the write heatmap.
    assert hm.matrix("write").sum() == pytest.approx(4 * 3 * 2**20)
    assert hm.conservation_check()

    path = tmp_path / "x.darshan"
    write_log(result.darshan_log, path)
    loaded = parse_log(path)
    np.testing.assert_allclose(
        loaded.heatmap.matrix("write"), hm.matrix("write")
    )


def test_heatmap_disabled(tmp_path):
    from repro.apps import MpiIoTest
    from repro.darshan import DarshanConfig
    from repro.experiments import World, WorldConfig, run_job

    world = World(WorldConfig(seed=2, quiet=True, n_compute_nodes=4))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=1, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs", darshan_config=DarshanConfig(enable_heatmap=False)
    )
    assert result.darshan_log.heatmap is None
