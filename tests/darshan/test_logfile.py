"""Tests for the Darshan log writer/parser round trip."""

import pytest

from repro.darshan import parse_log, write_log
from repro.darshan.logfile import LogFormatError
from tests.darshan.conftest import run


@pytest.fixture
def finished_log(env, posix, runtime):
    def proc():
        h = yield from posix.open("/data/a.dat", "w")
        yield from posix.write(h, 1000)
        yield from posix.read(h, 500, offset=0)
        yield from posix.close(h)
        h = yield from posix.open("/data/b.dat", "w")
        yield from posix.write(h, 42)
        yield from posix.close(h)

    run(env, proc())
    return runtime.finalize()


def test_finalize_populates_header(finished_log):
    assert finished_log.job_id == 259903
    assert finished_log.uid == 99066
    assert finished_log.nprocs == 4
    assert finished_log.runtime_seconds > 0


def test_summary_aggregates(finished_log):
    summary = finished_log.summary()
    posix = summary["POSIX"]
    assert posix["POSIX_OPENS"] == 2
    assert posix["POSIX_BYTES_WRITTEN"] == 1042
    assert posix["POSIX_BYTES_READ"] == 500
    assert posix["POSIX_F_WRITE_TIME"] > 0


def test_modules_and_paths(finished_log):
    assert finished_log.modules() == ["POSIX"]
    recs = finished_log.records_for("POSIX")
    paths = sorted(finished_log.path_for(r.record_id) for r in recs)
    assert paths == ["/data/a.dat", "/data/b.dat"]
    with pytest.raises(KeyError):
        finished_log.path_for(0)


def test_round_trip_preserves_everything(tmp_path, finished_log):
    path = tmp_path / "job.darshan"
    write_log(finished_log, path)
    loaded = parse_log(path)
    assert loaded.job_id == finished_log.job_id
    assert loaded.summary() == finished_log.summary()
    assert loaded.names.keys() == finished_log.names.keys()
    assert loaded.dxt_record_count() == finished_log.dxt_record_count()
    # DXT segments survive with full fidelity.
    key = next(iter(finished_log.dxt_segments))
    assert loaded.dxt_segments[key] == finished_log.dxt_segments[key]


def test_parse_rejects_garbage(tmp_path):
    bad = tmp_path / "not_a_log"
    bad.write_bytes(b"garbage content")
    with pytest.raises(LogFormatError):
        parse_log(bad)


def test_parse_rejects_corrupt_payload(tmp_path):
    bad = tmp_path / "corrupt"
    bad.write_bytes(b"DSHNRPR1" + b"\x00\x01\x02")
    with pytest.raises(LogFormatError):
        parse_log(bad)
