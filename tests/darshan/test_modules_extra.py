"""Tests for MPIIO/H5/LUSTRE module instrumentation and DXT bounds."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.darshan import DarshanRuntime, DxtTracer
from repro.fs.posix import IOContext, PosixClient
from repro.hdf5 import H5File
from repro.mpi import Communicator, MPIIOFile, RankContext
from repro.sim import RngRegistry
from tests.darshan.conftest import CollectingListener, run


def _make_comm(env, fs, runtime, n_ranks=4):
    cluster = Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=2))
    ranks = []
    for r in range(n_ranks):
        node = cluster.compute_nodes[r % 2]
        ctx = IOContext(
            job_id=1, uid=1, rank=r, node_name=node.name, exe="/bin/a", app="t"
        )
        client = PosixClient(env, fs, ctx)
        runtime.instrument(client)
        ranks.append(RankContext(rank=r, node=node, posix=client))
    return Communicator(env, ranks)


def test_mpiio_collective_vs_independent_counters(env, nfs, runtime):
    comm = _make_comm(env, nfs, runtime)
    f = MPIIOFile(comm, "/out.dat")
    runtime.instrument(f)
    block = 2**20

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at_all(rank, rank * block, block)
        yield from f.write_at(rank, (4 + rank) * block, block)
        yield from f.close_all(rank)

    procs = [env.process(body(r)) for r in range(4)]
    env.run(env.all_of(procs))

    mpiio = runtime.module_records("MPIIO")
    assert len(mpiio) == 4  # one record per rank
    total_coll = sum(r.get("COLL_WRITES") for r in mpiio)
    total_indep = sum(r.get("INDEP_WRITES") for r in mpiio)
    assert total_coll == 4
    assert total_indep == 4
    # POSIX layer saw the aggregator writes + the independent writes.
    posix = runtime.module_records("POSIX")
    posix_writes = sum(r.get("WRITES") for r in posix)
    assert posix_writes >= 5


def test_mpiio_events_flagged_collective(env, nfs, runtime):
    comm = _make_comm(env, nfs, runtime)
    f = MPIIOFile(comm, "/out.dat")
    runtime.instrument(f)
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    block = 2**20

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at_all(rank, rank * block, block)
        yield from f.close_all(rank)

    procs = [env.process(body(r)) for r in range(4)]
    env.run(env.all_of(procs))
    coll_writes = [
        e for e in listener.events if e.module == "MPIIO" and e.op == "write"
    ]
    assert len(coll_writes) == 4
    assert all(e.collective for e in coll_writes)


def test_lustre_static_record_on_open(env, lustre, context):
    runtime = DarshanRuntime(env, job_id=1, uid=1, exe="/x", nprocs=1)
    posix = PosixClient(env, lustre, context)
    runtime.instrument(posix)

    def proc():
        h = yield from posix.open("/lus/f", "w")
        yield from posix.close(h)

    run(env, proc())
    lustre_recs = runtime.module_records("LUSTRE")
    assert len(lustre_recs) == 1
    rec = lustre_recs[0]
    assert rec.get("STRIPE_SIZE") == lustre.params.stripe_size_bytes
    assert rec.get("STRIPE_WIDTH") == lustre.params.stripe_count
    assert rec.get("OSTS") == lustre.params.n_osts


def test_no_lustre_record_on_nfs(env, posix, runtime):
    def proc():
        h = yield from posix.open("/f", "w")
        yield from posix.close(h)

    run(env, proc())
    assert runtime.module_records("LUSTRE") == []


def test_h5_modules_capture_dataset_metadata(env, nfs, context):
    runtime = DarshanRuntime(env, job_id=1, uid=1, exe="/x", nprocs=1)
    posix = PosixClient(env, nfs, context)
    runtime.instrument(posix)
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    h5 = H5File(posix, "/mesh.h5")
    runtime.instrument(h5)

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", shape=(8, 16, 16), element_size=8)
        yield from h5.write_hyperslab("u", (0, 0, 0), (4, 16, 16))
        yield from h5.write_points("u", 100)
        yield from h5.flush_dataset("u")
        yield from h5.close()

    run(env, proc())
    h5d = runtime.module_records("H5D")
    assert len(h5d) == 1
    rec = h5d[0]
    assert rec.get("REGULAR_HYPERSLAB_SELECTS") == 1
    assert rec.get("POINT_SELECTS") == 1
    assert rec.get("DATASPACE_NDIMS") == 3
    assert rec.get("FLUSHES") == 1
    h5f = runtime.module_records("H5F")
    assert h5f[0].get("OPENS") == 1

    writes = [e for e in listener.events if e.module == "H5D" and e.op == "write"]
    assert writes[0].hdf5["data_set"] == "u"
    assert writes[0].hdf5["ndims"] == 3
    assert writes[0].hdf5["npoints"] == 4 * 16 * 16
    assert writes[1].hdf5["pt_sel"] == 1
    # H5D events report cumulative dataset flushes.
    assert all(e.flushes >= 0 for e in writes)


def test_posix_events_have_no_hdf5_meta(env, posix, runtime):
    listener = CollectingListener()
    runtime.add_event_listener(listener)

    def proc():
        h = yield from posix.open("/f", "w")
        yield from posix.write(h, 10)
        yield from posix.close(h)

    run(env, proc())
    assert all(e.hdf5 is None for e in listener.events)


# ------------------------------------------------------------------ DXT


def test_dxt_tracer_bounds_memory():
    tracer = DxtTracer(max_segments_per_record=3)
    for i in range(5):
        tracer.trace("POSIX", 0, 42, "write", i * 10, 10, float(i), i + 0.5)
    assert len(tracer.segments("POSIX", 0, 42)) == 3
    assert tracer.overflowed("POSIX", 0, 42)
    assert tracer.total_segments == 3


def test_dxt_ignores_untraced_modules_and_ops():
    tracer = DxtTracer()
    assert not tracer.trace("STDIO", 0, 1, "write", 0, 10, 0.0, 1.0)
    assert not tracer.trace("POSIX", 0, 1, "open", 0, 0, 0.0, 1.0)
    assert tracer.trace("MPIIO", 0, 1, "read", 0, 10, 0.0, 1.0)


def test_dxt_validation():
    with pytest.raises(ValueError):
        DxtTracer(max_segments_per_record=0)
