"""Tests for the Darshan runtime: counters, events, cnt/switch logic."""

import pytest

from repro.darshan import DarshanConfig, DarshanRuntime, record_id_for
from tests.darshan.conftest import CollectingListener, run


def _do_io(posix, pattern):
    """Run a simple scripted I/O pattern; pattern is a list of ops."""

    def proc():
        h = yield from posix.open("/data/file.dat", "w")
        for op, size in pattern:
            if op == "w":
                yield from posix.write(h, size)
            elif op == "r":
                yield from posix.read(h, size, offset=0)
            elif op == "fsync":
                yield from posix.fsync(h)
        yield from posix.close(h)

    return proc()


def test_posix_counters_accumulate(env, posix, runtime):
    run(env, _do_io(posix, [("w", 100), ("w", 200), ("r", 50)]))
    recs = runtime.module_records("POSIX")
    assert len(recs) == 1
    rec = recs[0]
    assert rec.get("OPENS") == 1
    assert rec.get("CLOSES") == 1
    assert rec.get("WRITES") == 2
    assert rec.get("READS") == 1
    assert rec.get("BYTES_WRITTEN") == 300
    assert rec.get("BYTES_READ") == 50
    assert rec.get("MAX_BYTE_WRITTEN") == 299
    assert rec.get("MAX_BYTE_READ") == 49
    assert rec.get("FSYNCS") == 0


def test_rw_switches_count_alternations(env, posix, runtime):
    run(env, _do_io(posix, [("w", 10), ("r", 10), ("w", 10), ("w", 10), ("r", 10)]))
    rec = runtime.module_records("POSIX")[0]
    # w->r, r->w, w->r : 3 switches
    assert rec.get("RW_SWITCHES") == 3


def test_time_counters_positive_and_relative(env, posix, runtime):
    run(env, _do_io(posix, [("w", 2**20)]))
    rec = runtime.module_records("POSIX")[0]
    assert rec.fget("F_WRITE_TIME") > 0
    assert rec.fget("F_OPEN_START_TIMESTAMP") >= 0
    # Relative to job start, so far smaller than the epoch clock.
    assert rec.fget("F_CLOSE_END_TIMESTAMP") < 1e6


def test_record_id_stable_and_shared(env, posix, runtime):
    run(env, _do_io(posix, [("w", 1)]))
    rec = runtime.module_records("POSIX")[0]
    assert rec.record_id == record_id_for("/data/file.dat")
    assert runtime.names[rec.record_id].path == "/data/file.dat"


def test_events_delivered_to_listener(env, posix, runtime):
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    run(env, _do_io(posix, [("w", 100), ("r", 50)]))
    ops = [e.op for e in listener.events]
    assert ops == ["open", "write", "read", "close"]
    assert all(e.module == "POSIX" for e in listener.events)
    assert all(e.context.rank == 3 for e in listener.events)


def test_event_absolute_timestamps(env, posix, runtime):
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    run(env, _do_io(posix, [("w", 100)]))
    ev = listener.events[1]
    assert ev.start >= 1_650_000_000.0  # absolute epoch time
    assert ev.timestamp == ev.end
    assert ev.duration >= 0


def test_event_relative_timestamps_without_modification(env, nfs, context):
    """Vanilla Darshan (no timestamp patch) only has job-relative times."""
    from repro.fs.posix import PosixClient

    runtime = DarshanRuntime(
        env,
        job_id=1,
        uid=1,
        exe="/x",
        nprocs=1,
        config=DarshanConfig(absolute_timestamps=False),
    )
    posix = PosixClient(env, nfs, context)
    runtime.instrument(posix)
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    run(env, _do_io(posix, [("w", 100)]))
    assert all(e.start < 1e6 for e in listener.events)


def test_event_cnt_resets_after_close(env, posix, runtime):
    listener = CollectingListener()
    runtime.add_event_listener(listener)

    def proc():
        for _ in range(2):
            h = yield from posix.open("/f", "w")
            yield from posix.write(h, 10)
            yield from posix.close(h)

    run(env, proc())
    cnts = [e.cnt for e in listener.events]
    # open=1, write=2, close=3, then reset: open=1, write=2, close=3
    assert cnts == [1, 2, 3, 1, 2, 3]


def test_event_max_byte_semantics(env, posix, runtime):
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    run(env, _do_io(posix, [("w", 100)]))
    by_op = {e.op: e for e in listener.events}
    assert by_op["open"].max_byte == -1
    assert by_op["write"].max_byte == 99
    assert by_op["open"].switches == -1
    assert by_op["write"].flushes == -1  # POSIX events carry no flushes


def test_fsync_and_stat_counted_but_not_event(env, posix, runtime):
    listener = CollectingListener()
    runtime.add_event_listener(listener)
    run(env, _do_io(posix, [("w", 10), ("fsync", 0)]))
    rec = runtime.module_records("POSIX")[0]
    assert rec.get("FSYNCS") == 1
    assert [e.op for e in listener.events] == ["open", "write", "close"]


def test_disabled_module_records_nothing(env, nfs, context):
    from repro.fs.posix import PosixClient

    runtime = DarshanRuntime(
        env,
        job_id=1,
        uid=1,
        exe="/x",
        nprocs=1,
        config=DarshanConfig(enabled_modules=("STDIO",)),
    )
    posix = PosixClient(env, nfs, context)
    runtime.instrument(posix)
    run(env, _do_io(posix, [("w", 10)]))
    assert runtime.module_records("POSIX") == []


def test_unknown_module_config_rejected():
    with pytest.raises(ValueError):
        DarshanConfig(enabled_modules=("POSIX", "BOGUS"))


def test_nprocs_validation(env):
    with pytest.raises(ValueError):
        DarshanRuntime(env, job_id=1, uid=1, exe="/x", nprocs=0)


def test_bad_listener_rejected(runtime):
    with pytest.raises(TypeError):
        runtime.add_event_listener(object())


def test_wtime_tracks_relative_clock(env, runtime):
    assert runtime.wtime() == 0.0

    def proc():
        yield env.timeout(12.5)

    run(env, proc())
    assert runtime.wtime() == pytest.approx(12.5)


def test_dxt_traces_reads_writes_only(env, posix, runtime):
    run(env, _do_io(posix, [("w", 100), ("r", 50), ("fsync", 0)]))
    rec = runtime.module_records("POSIX")[0]
    segs = runtime.dxt.segments("POSIX", 3, rec.record_id)
    assert [s.op for s in segs] == ["write", "read"]
    assert segs[0].length == 100
    assert segs[0].start >= 0  # job-relative
    assert segs[0].end < 1e6


def test_dxt_disabled(env, nfs, context):
    from repro.fs.posix import PosixClient

    runtime = DarshanRuntime(
        env,
        job_id=1,
        uid=1,
        exe="/x",
        nprocs=1,
        config=DarshanConfig(enable_dxt=False),
    )
    posix = PosixClient(env, nfs, context)
    runtime.instrument(posix)
    run(env, _do_io(posix, [("w", 10)]))
    assert runtime.dxt is None


def test_total_events_counted(env, posix, runtime):
    run(env, _do_io(posix, [("w", 10), ("r", 10)]))
    # open + write + read + close = 4
    assert runtime.total_events == 4


def test_stdio_module_instrumented(env, posix, runtime):
    from repro.fs.posix import StdioClient

    stdio = StdioClient(posix, buffer_size=1024)
    runtime.instrument(stdio)
    listener = CollectingListener()
    runtime.add_event_listener(listener)

    def proc():
        h = yield from stdio.fopen("/log.txt", "w")
        for _ in range(5):
            yield from stdio.fwrite(h, 100)
        yield from stdio.fclose(h)

    run(env, proc())
    stdio_recs = runtime.module_records("STDIO")
    assert len(stdio_recs) == 1
    assert stdio_recs[0].get("WRITES") == 5
    assert stdio_recs[0].get("BYTES_WRITTEN") == 500
    # STDIO events flow to listeners too.
    assert sum(1 for e in listener.events if e.module == "STDIO" and e.op == "write") == 5
