"""Tests for size histograms, access-pattern counters and job summary."""

import pytest

from repro.darshan import job_summary, render_job_summary
from repro.darshan.counters import size_bucket_suffix
from tests.darshan.conftest import run


# --------------------------------------------------------- bucket mapping


@pytest.mark.parametrize(
    "nbytes,expected",
    [
        (0, "SIZE_READ_0_100"),
        (99, "SIZE_READ_0_100"),
        (100, "SIZE_READ_100_1K"),
        (1024, "SIZE_READ_1K_10K"),
        (2**20, "SIZE_READ_1M_4M"),
        (5 * 2**20, "SIZE_READ_4M_10M"),
        (2**31, "SIZE_READ_1G_PLUS"),
    ],
)
def test_size_bucket_boundaries(nbytes, expected):
    assert size_bucket_suffix("read", nbytes) == expected


def test_size_bucket_write_prefix():
    assert size_bucket_suffix("write", 50).startswith("SIZE_WRITE_")


# ---------------------------------------------------- counters from runs


def test_size_histogram_counted(env, posix, runtime):
    def proc():
        h = yield from posix.open("/f", "w")
        yield from posix.write(h, 50)           # 0_100
        yield from posix.write(h, 500)          # 100_1K
        yield from posix.write(h, 2 * 2**20)    # 1M_4M
        yield from posix.close(h)

    run(env, proc())
    rec = runtime.module_records("POSIX")[0]
    assert rec.get("SIZE_WRITE_0_100") == 1
    assert rec.get("SIZE_WRITE_100_1K") == 1
    assert rec.get("SIZE_WRITE_1M_4M") == 1
    assert rec.get("SIZE_READ_0_100") == 0


def test_seq_and_consec_counters(env, posix, runtime):
    def proc():
        h = yield from posix.open("/f", "w")
        yield from posix.write(h, 100, offset=0)     # first: neither
        yield from posix.write(h, 100, offset=100)   # seq + consec
        yield from posix.write(h, 100, offset=500)   # seq only (gap)
        yield from posix.write(h, 100, offset=50)    # backwards: neither
        yield from posix.close(h)

    run(env, proc())
    rec = runtime.module_records("POSIX")[0]
    assert rec.get("SEQ_WRITES") == 2
    assert rec.get("CONSEC_WRITES") == 1


def test_pattern_counters_track_per_direction(env, posix, runtime):
    def proc():
        h = yield from posix.open("/f", "w")
        yield from posix.write(h, 100, offset=0)
        yield from posix.read(h, 50, offset=0)   # first read: no seq
        yield from posix.read(h, 50, offset=50)  # consec read
        yield from posix.close(h)

    run(env, proc())
    rec = runtime.module_records("POSIX")[0]
    assert rec.get("SEQ_READS") == 1
    assert rec.get("CONSEC_READS") == 1
    assert rec.get("SEQ_WRITES") == 0


# -------------------------------------------------------------- summary


@pytest.fixture
def mpiio_log():
    from repro.apps import MpiIoTest
    from repro.experiments import World, WorldConfig, run_job

    world = World(WorldConfig(seed=6, quiet=True, n_compute_nodes=4))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=4, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    return run_job(world, app, "lustre").darshan_log


def test_job_summary_structure(mpiio_log):
    data = job_summary(mpiio_log)
    assert data["job"]["nprocs"] == 4
    posix = data["modules"]["POSIX"]
    assert posix["bytes_written"] == 4 * 4 * 2**20
    assert posix["est_mib_per_s"] > 0
    # Each rank wrote 4 x 1 MiB blocks.
    assert data["size_histogram"]["write"]["1M_4M"] == 16
    # mpi-io-test writes sequentially within a rank's region.
    assert data["access_patterns"]["seq_write_pct"] > 50
    assert data["busiest_files"]
    assert data["busiest_files"][0]["bytes"] == 2 * 4 * 4 * 2**20  # r+w


def test_render_job_summary_text(mpiio_log):
    text = render_job_summary(mpiio_log)
    assert "darshan job summary" in text
    assert "POSIX" in text
    assert "1M_4M" in text
    assert "sequential:" in text
    assert "busiest files:" in text
    assert "I/O intensity over time" in text


def test_summary_roundtrips_through_disk(tmp_path, mpiio_log):
    from repro.darshan import parse_log, write_log

    path = tmp_path / "l.darshan"
    write_log(mpiio_log, path)
    data = job_summary(parse_log(path))
    assert data["modules"]["POSIX"]["bytes_written"] == 4 * 4 * 2**20
