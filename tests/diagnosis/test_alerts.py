"""Alert lifecycle: pending -> firing -> resolved, with hysteresis."""

import pytest

from repro.diagnosis import FIRING, PENDING, RESOLVED, Alert, IncidentLog


def test_lifecycle_happy_path():
    a = Alert(rule="r", severity="warning", t_pending=1.0, threshold=5.0)
    assert a.state == PENDING
    a.observe(6.0, "six")
    a.fire(1.5)
    assert a.state == FIRING
    assert a.t_fired == 1.5
    a.observe(9.0, "nine")
    a.resolve(2.0)
    assert a.state == RESOLVED
    assert a.t_resolved == 2.0
    assert a.peak_value == 9.0
    assert a.detail == "nine"


def test_illegal_transitions_raise():
    a = Alert(rule="r", severity="info", t_pending=0.0)
    with pytest.raises(RuntimeError):
        a.resolve(1.0)  # cannot resolve before firing
    a.fire(0.5)
    with pytest.raises(RuntimeError):
        a.fire(1.0)  # cannot fire twice
    a.resolve(1.0)
    with pytest.raises(RuntimeError):
        a.resolve(2.0)


def test_observe_tracks_worst_magnitude():
    a = Alert(rule="r", severity="info", t_pending=0.0)
    a.observe(4.0, "four")
    a.observe(2.0, "two")  # smaller: peak unchanged
    assert a.peak_value == 4.0
    assert a.detail == "four"
    a.observe(-5.0, "minus five")  # larger magnitude wins
    assert a.peak_value == -5.0


def test_to_dict_relative_times():
    a = Alert(rule="r", severity="info", t_pending=100.5)
    a.fire(101.0)
    d = a.to_dict(epoch=100.0)
    assert d["t_pending"] == pytest.approx(0.5)
    assert d["t_fired"] == pytest.approx(1.0)
    assert d["t_resolved"] is None


def test_incident_log_queries_and_render():
    log = IncidentLog()
    assert "(no incidents)" in log.render_text()
    a = Alert(rule="a", severity="critical", t_pending=0.0)
    a.fire(0.5)
    b = Alert(rule="b", severity="warning", t_pending=0.0)
    b.fire(0.6)
    b.resolve(0.9)
    log.record(a)
    log.record(b)
    assert len(log) == 2
    assert log.firing() == [a]
    assert log.for_rule("b") == [b]
    text = log.render_text()
    assert "a" in text and "firing" in text and "resolved" in text


def test_record_assigns_incident_ids_in_order():
    log = IncidentLog()
    alerts = []
    for i in range(3):
        a = Alert(rule=f"r{i}", severity="info", t_pending=float(i))
        a.fire(i + 0.5)
        assert a.incident_id == -1  # unassigned until recorded
        log.record(a)
        alerts.append(a)
    assert [a.incident_id for a in alerts] == [0, 1, 2]


def test_to_dict_includes_id_and_duration():
    a = Alert(rule="r", severity="warning", t_pending=10.0)
    a.fire(10.5)
    assert a.to_dict()["duration_s"] is None  # not resolved yet
    a.resolve(12.25)
    a.incident_id = 4
    d = a.to_dict(epoch=10.0)
    assert d["id"] == 4
    assert d["duration_s"] == pytest.approx(1.75)


def test_alert_json_round_trip_and_byte_stability():
    epoch = 1_650_000_000.0
    a = Alert(rule="store_stall", severity="critical",
              t_pending=epoch + 0.15, threshold=3.0)
    a.observe(7.123456789, "pending=7")
    a.fire(epoch + 0.25)
    a.resolve(epoch + 0.4)
    a.incident_id = 2

    blob = a.to_json(epoch)
    # Byte-stable: same alert, same bytes, keys sorted.
    assert blob == a.to_json(epoch)
    keys = list(__import__("json").loads(blob))
    assert keys == sorted(keys)

    back = Alert.from_dict(__import__("json").loads(blob), epoch)
    assert back == a
    assert back.to_json(epoch) == blob


def test_incident_log_json_byte_stable():
    log = IncidentLog()
    a = Alert(rule="a", severity="critical", t_pending=0.125)
    a.fire(0.5)
    log.record(a)
    blob = log.to_json()
    assert blob == log.to_json()
    parsed = __import__("json").loads(blob)
    assert parsed["count"] == 1
    assert parsed["incidents"][0]["id"] == 0
    # Round-trip every incident through from_dict.
    rebuilt = [Alert.from_dict(d) for d in parsed["incidents"]]
    assert rebuilt == log.incidents
