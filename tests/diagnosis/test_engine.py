"""The engine end to end: ground-truth detection inside sim time.

The acceptance bar from the ISSUE: a seeded chaos campaign where
DaemonCrash, LinkDegrade and SlowStore are each *detected* — a
matching alert fires inside the fault window with a recorded detection
latency — and a fault-free control run of the same campaign raises
zero alerts.
"""

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.diagnosis import DiagnosisConfig, DiagnosisEngine, score_incidents
from repro.experiments import World, WorldConfig, run_job
from repro.faults import DaemonCrash, FaultPlan, LinkDegrade, SlowStore
from repro.ldms.resilience import RetryPolicy
from repro.webservices import LiveDashboard

#: Cadence matched to the sub-second chaos fault windows.
DIAG = DiagnosisConfig(
    eval_period_s=0.05, window_s=0.25, for_duration_s=0.1,
    latency_slo_s=0.25, slo_min_count=8,
)

CHAOS_PLAN = FaultPlan((
    DaemonCrash("l1", after_messages=50, down_for=0.5),
    LinkDegrade("nid00001", "head", at=0.2, duration=0.3, factor=50.0),
    SlowStore(at=0.1, duration=0.4),
))


def _campaign(faults, seed=42, fast=True):
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, faults=faults, retry=RetryPolicy(),
        standby_l1=True, diagnosis=DIAG,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(spill=True, fast_lane=fast),
        inter_job_gap_s=0.0,
    )
    return world, result


@pytest.fixture(scope="module", params=[True, False],
                ids=["fast-lane", "reference"])
def chaos(request):
    return _campaign(CHAOS_PLAN, fast=request.param)


def test_every_fault_class_detected_with_latency(chaos):
    world, _ = chaos
    score = score_incidents(
        world.diagnosis.incidents, world.fault_injector.applied)
    assert score.ok(), f"undetected: {score.undetected_classes()}"
    classes = score.classes()
    assert classes == {
        "daemon_crash": True, "link_degrade": True, "slow_store": True,
    }
    for det in score.detections:
        assert det.detected
        assert det.rule is not None
        # Detection latency is recorded, positive, and bounded by the
        # firing hysteresis plus the (sub-second) fault window.
        assert det.latency_s is not None
        assert 0.0 < det.latency_s < 1.5


def test_alerts_resolve_after_faults_heal(chaos):
    world, _ = chaos
    # Every fault in the plan ends; by drain time nothing still fires.
    assert world.diagnosis.firing() == []
    for alert in world.diagnosis.incidents:
        assert alert.state == "resolved"
        assert alert.t_resolved >= alert.t_fired >= alert.t_pending


def test_chaos_run_still_reconciles(chaos):
    _, result = chaos
    assert result.health.verify()


def test_clean_run_raises_zero_alerts():
    world, result = _campaign(faults=None)
    assert len(world.diagnosis.incidents) == 0
    assert world.diagnosis.ticks > 0  # the engine genuinely ran
    assert result.health.verify()


def test_engine_requires_telemetry():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=2))
    with pytest.raises(RuntimeError, match="telemetry"):
        DiagnosisEngine(world, DiagnosisConfig())


def test_engine_arm_is_single_shot():
    world = World(WorldConfig(
        seed=1, quiet=True, n_compute_nodes=2, telemetry=True,
        diagnosis=DiagnosisConfig(),
    ))
    with pytest.raises(RuntimeError, match="armed"):
        world.diagnosis.arm()


def test_diagnosis_config_validation():
    with pytest.raises(ValueError):
        DiagnosisConfig(eval_period_s=0.0)
    with pytest.raises(ValueError):
        DiagnosisConfig(eval_period_s=1.0, window_s=0.5)
    with pytest.raises(ValueError):
        DiagnosisConfig(for_duration_s=-1.0)


def test_live_dashboard_renders_engine_state(chaos):
    world, _ = chaos
    dash = LiveDashboard(world.diagnosis)
    panels = dash.render()
    titles = [p.title for p in panels]
    assert titles[0] == "firing alerts"
    assert titles[1] == "incident log"
    # One time-series panel per rule, windowed.
    rule_panels = [p for p in panels if p.title.startswith("rule: ")]
    assert len(rule_panels) == len(world.diagnosis.rules)
    for p in rule_panels:
        assert len(p.payload["t"]) == len(p.payload["value"])
    text = dash.render_text()
    assert "incident log" in text
    html = dash.to_html()
    assert html.startswith("<!DOCTYPE html>") or "<html" in html
