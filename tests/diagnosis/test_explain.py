"""Explainable bottleneck classification: strategies, scoring, census."""

from dataclasses import dataclass

import pytest

from repro.diagnosis import DiagnosisConfig
from repro.diagnosis.explain import (
    CLASSIFIERS,
    EXPLAIN_METRICS,
    STRATEGY_WEIGHTS,
    VERDICT_CLASSES,
    BottleneckVerdict,
    _strategy_daemon_health,
    _strategy_metadata_mix,
    _strategy_rank_imbalance,
    _strategy_storage_stall,
    _strategy_transport_pressure,
    explain_campaign,
    explain_gauges,
    explain_job,
    explain_plan,
    score_verdicts,
)
from repro.diagnosis.features import FeatureVector
from repro.diagnosis.scoring import _BEGIN_KINDS, DETECTORS


# ------------------------------------------------------- shared stubs


@dataclass(frozen=True)
class _Alert:
    """Shape-compatible stand-in for a fired diagnosis alert."""

    rule: str
    t_fired: float = 1.0
    incident_id: int = 0


class _Series:
    def __init__(self, value=0.0):
        self._value = value

    def value_at(self, t):
        return self._value


class _Engine:
    """Read-only engine stub: fixed series values + a real config."""

    def __init__(self, series=None, config=None):
        self._series = dict(series or {})
        self.config = config or DiagnosisConfig()

    def series(self, name):
        return _Series(self._series.get(name, 0.0))


def _features(**kw):
    return FeatureVector(job_id=1, **kw)


# --------------------------------------------- census (satellite task)


def test_census_every_fault_class_has_detector_and_classifier():
    """Drift guard: a new fault class must land in BOTH registries.

    Adding a begin-kind to the injector without wiring a rule-level
    detector (scoring.DETECTORS) or a verdict-level classification
    (explain.CLASSIFIERS) silently breaks ``--check`` scoring — this
    census fails first, naming the orphan class.
    """
    fault_classes = {cls for cls, _ in _BEGIN_KINDS.values()}
    assert fault_classes, "injector begin-kind registry went empty"
    for cls in sorted(fault_classes):
        assert cls in DETECTORS, f"fault class {cls!r} has no DETECTORS entry"
        assert DETECTORS[cls], f"fault class {cls!r} has an empty detector set"
        assert cls in CLASSIFIERS, (
            f"fault class {cls!r} has no CLASSIFIERS entry"
        )
        assert CLASSIFIERS[cls], (
            f"fault class {cls!r} has an empty classifier set"
        )


def test_census_registries_have_no_orphan_classes():
    fault_classes = {cls for cls, _ in _BEGIN_KINDS.values()}
    assert set(DETECTORS) == fault_classes
    assert set(CLASSIFIERS) == fault_classes


def test_census_classifier_targets_are_valid_verdict_classes():
    for cls, verdicts in CLASSIFIERS.items():
        assert verdicts <= set(VERDICT_CLASSES), (
            f"{cls!r} maps to unknown verdict class(es) "
            f"{sorted(verdicts - set(VERDICT_CLASSES))}"
        )


def test_strategy_weights_are_normalized_scores():
    for name, weight in STRATEGY_WEIGHTS.items():
        assert 0.0 < weight <= 1.0, name


def test_explain_metrics_shape():
    names = [name for name, _, _ in EXPLAIN_METRICS]
    assert len(names) == len(set(names)) == 4
    assert all(name.startswith("explain_") for name in names)


# ------------------------------------------------------------ verdicts


def test_verdict_rejects_unknown_class():
    with pytest.raises(ValueError, match="unknown verdict class"):
        BottleneckVerdict(cls="cosmic_rays", score=0.5, strategy="x")


def test_verdict_rejects_out_of_range_score():
    with pytest.raises(ValueError, match="score"):
        BottleneckVerdict(cls="healthy", score=1.5, strategy="x")


# ---------------------------------------------------------- strategies


def test_daemon_health_fires_on_direct_daemon_down():
    verdict = _strategy_daemon_health(
        _features(daemons_failed_peak=1.0),
        [_Alert("daemon_down")],
        _Engine(),
    )
    assert verdict.cls == "pipeline_self_inflicted"
    assert verdict.strategy == "daemon_health"
    assert any("daemons_failed_peak=1" in t for t in verdict.thresholds_fired)


def test_daemon_health_ignores_retries_with_no_daemon_down():
    # retry_growth alone, with every daemon up at fire time, is the
    # transport strategy's evidence — not the pipeline's.
    verdict = _strategy_daemon_health(
        _features(),
        [_Alert("retry_growth")],
        _Engine({"daemons_failed": 0.0}),
    )
    assert verdict is None


def test_transport_attributes_only_when_nothing_else_broken():
    incidents = [_Alert("queue_backlog")]
    healthy_world = _Engine({
        "daemons_failed": 0.0, "slow_pending": 0.0,
        "store_replicas_down": 0.0,
    })
    verdict = _strategy_transport_pressure(
        _features(queue_depth_peak=100.0), incidents, healthy_world)
    assert verdict.cls == "network_transport"
    assert verdict.evidence["rules"] == ["queue_backlog"]


@pytest.mark.parametrize("broken", [
    {"daemons_failed": 1.0},
    {"slow_pending": 5.0},
    {"store_replicas_down": 1.0},
])
def test_transport_excludes_incidents_with_collateral_cause(broken):
    # The same alert fired while a daemon/store was down is NOT
    # creditable to the network (honest at-fire-time attribution).
    verdict = _strategy_transport_pressure(
        _features(queue_depth_peak=100.0),
        [_Alert("queue_backlog")],
        _Engine(broken),
    )
    assert verdict is None


def test_storage_stall_fires_on_load_correlation_alone():
    verdict = _strategy_storage_stall(
        _features(fs_load_degenerate=False, fs_load_r=0.9, fs_name="lustre"),
        [],
        _Engine(),
    )
    assert verdict.cls == "fs_contention"
    assert any("fs_load_r" in t for t in verdict.thresholds_fired)
    assert any("lustre" in r.action for r in verdict.recommendations)


def test_storage_stall_ignores_degenerate_correlation():
    verdict = _strategy_storage_stall(
        _features(fs_load_degenerate=True, fs_load_r=0.9),
        [],
        _Engine(),
    )
    assert verdict is None


def test_rank_imbalance_needs_enough_events():
    skewed = _features(rank_imbalance_ratio=5.0, n_events=100)
    verdict = _strategy_rank_imbalance(skewed, [], _Engine())
    assert verdict.cls == "app_imbalance"

    sparse = _features(rank_imbalance_ratio=5.0, n_events=3)
    assert _strategy_rank_imbalance(sparse, [], _Engine()) is None


def test_metadata_mix_on_metadata_heavy_job():
    verdict = _strategy_metadata_mix(
        _features(workload_class="metadata-intensive", n_events=50,
                  metadata_op_fraction=0.8),
        [],
        _Engine(),
    )
    assert verdict.cls == "metadata"
    assert _strategy_metadata_mix(_features(), [], _Engine()) is None


# ------------------------------------------------ ground-truth scoring


@dataclass(frozen=True)
class _Applied:
    t: float
    kind: str
    detail: str


def _verdict(cls, score=0.8, strategy="s"):
    return BottleneckVerdict(cls=cls, score=score, strategy=strategy)


def test_score_clean_run_expects_exactly_healthy():
    score = score_verdicts([_verdict("healthy", 1.0, "baseline")], [])
    assert score.expected == ["healthy"]
    assert score.ok()


def test_score_clean_run_rejects_false_positive():
    score = score_verdicts([_verdict("fs_contention")], [])
    assert not score.ok()
    assert score.unexpected_classes() == ["fs_contention"]


def test_score_matches_fault_classes_via_classifiers():
    applied = [
        _Applied(0.2, "link_degrade", "head -- shirley x50"),
        _Applied(0.5, "link_restore", "head -- shirley"),
        _Applied(0.9, "slow_store_begin", "shirley"),
        _Applied(1.3, "slow_store_end", "shirley"),
    ]
    score = score_verdicts(
        [_verdict("network_transport"), _verdict("fs_contention")], applied)
    assert score.ok()
    assert score.confusion["link_degrade"]["matched"]
    assert score.confusion["slow_store"]["matched"]


def test_score_reports_missing_class():
    applied = [
        _Applied(0.2, "daemon_crash", "l1 (head)"),
        _Applied(0.7, "daemon_recover", "l1 (head)"),
    ]
    score = score_verdicts([_verdict("fs_contention")], applied)
    assert not score.ok()
    assert score.missing_classes() == ["pipeline_self_inflicted"]
    assert not score.confusion["daemon_crash"]["matched"]
    assert "NO" in score.render_text()


# ------------------------------------------------ campaign end-to-end


@pytest.fixture(scope="module")
def faulted():
    return explain_campaign(seed=42, fast=False)


@pytest.fixture(scope="module")
def clean():
    return explain_campaign(seed=42, fast=False, faults=None)


def test_campaign_classifies_every_injected_class(faulted):
    score = faulted.score
    assert score.ok(), score.to_dict()
    assert score.recall == score.precision == 1.0
    assert set(faulted.report.classes()) == {
        "fs_contention", "network_transport", "pipeline_self_inflicted",
    }


def test_campaign_verdicts_are_ranked_and_evidence_linked(faulted):
    verdicts = faulted.report.verdicts
    assert [v.score for v in verdicts] == sorted(
        (v.score for v in verdicts), reverse=True)
    for v in verdicts:
        assert v.thresholds_fired, v.strategy
        assert v.recommendations, v.strategy
        assert v.evidence["incidents"], v.strategy
        assert v.evidence["signals"], v.strategy
        assert v.evidence["trace_id"] != ""


def test_clean_campaign_is_healthy(clean):
    report = clean.report
    assert report.healthy
    assert [v.cls for v in report.verdicts] == ["healthy"]
    assert report.primary.strategy == "baseline"
    assert clean.score.ok()


def test_explain_gauges_condense_the_report(faulted, clean):
    g = explain_gauges(faulted.report)
    assert g["explain_verdicts"] == len(faulted.report.verdicts)
    assert g["explain_confidence"] == faulted.report.primary.score
    assert g["explain_strategies_fired"] == len(faulted.report.verdicts)
    assert g["explain_healthy"] == 0
    cg = explain_gauges(clean.report)
    assert cg == {"explain_verdicts": 1, "explain_confidence": 1.0,
                  "explain_strategies_fired": 0, "explain_healthy": 1}


def test_report_json_is_byte_stable_and_sorted(faulted):
    blob = faulted.report.to_json()
    assert blob == faulted.report.to_json()
    import json

    payload = json.loads(blob)
    assert list(payload) == sorted(payload)
    assert payload["job_id"] == faulted.report.job_id


def test_render_text_names_verdicts_and_thresholds(faulted):
    text = faulted.report.render_text(faulted.epoch)
    assert f"== bottleneck verdicts (job {faulted.report.job_id}) ==" in text
    assert "fired:" in text
    assert "-> " in text
    assert "primary:" in text


def test_verdicts_ride_the_flight_recorder(faulted):
    ring = faulted.world.flight_recorder.rings["verdicts"]
    assert ring.captured == len(faulted.report.verdicts)
    records = [r for _, r in ring.all()]
    assert {r["class"] for r in records} == set(faulted.report.classes())
    assert all(r["event"] == "verdict" for r in records)


def test_explain_plan_windows_are_disjoint_across_classes():
    """The plan's attribution honesty rests on non-overlap: the degrade
    and slow-store windows may not overlap anything of another class."""
    plan = explain_plan()
    windows = []
    for fault in plan.faults:
        name = type(fault).__name__
        if name == "LinkDegrade":
            windows.append(("transport", fault.at, fault.at + fault.duration))
        elif name == "SlowStore":
            windows.append(("storage", fault.at, fault.at + fault.duration))
        elif name == "DaemonCrash":
            windows.append(("pipeline", fault.at, fault.at + fault.down_for))
        elif name == "StoreCrash":
            windows.append(("pipeline", fault.at, fault.at + fault.down_for))
    for i, (cls_a, a0, a1) in enumerate(windows):
        for cls_b, b0, b1 in windows[i + 1:]:
            if cls_a == cls_b:
                continue  # same verdict class may overlap itself
            assert a1 <= b0 or b1 <= a0, (
                f"{cls_a} [{a0}, {a1}] overlaps {cls_b} [{b0}, {b1}]"
            )
