"""Per-job feature vectors: the explain layer's classifier input."""

from dataclasses import fields

import pytest

from repro.diagnosis import FeatureVector, job_features
from repro.diagnosis.explain import explain_campaign


@pytest.fixture(scope="module")
def faulted():
    """One slow-lane chaos campaign shared by every test here."""
    return explain_campaign(seed=42, fast=False)


def test_default_vector_is_all_zeros_idle():
    fv = FeatureVector(job_id=7)
    assert fv.workload_class == "idle"
    assert fv.n_events == fv.n_reads == fv.n_writes == 0
    assert fv.duration_s == 0.0
    assert fv.rank_imbalance_ratio == 0.0
    assert fv.busiest_rank == -1
    assert fv.fs_load_degenerate is True
    assert fv.slowest_trace_id == ""


def test_to_dict_covers_every_field():
    fv = FeatureVector(job_id=7)
    d = fv.to_dict()
    assert set(d) == {f.name for f in fields(FeatureVector)}
    assert d["job_id"] == 7


def test_job_features_requires_diagnosis_engine():
    class _NoEngine:
        diagnosis = None

    with pytest.raises(RuntimeError, match="diagnosis engine"):
        job_features(_NoEngine(), 1)


def test_unknown_job_is_the_empty_vector(faulted):
    fv = job_features(faulted.world, 999_999)
    assert fv.job_id == 999_999
    assert fv.n_events == 0
    assert fv.workload_class == "idle"


def test_features_distill_the_chaos_campaign(faulted):
    fv = job_features(faulted.world, faulted.result.job_id)
    # op mix: the MPI-IO job is balanced read/write over 8 ranks.
    assert fv.workload_class == "balanced-rw"
    assert fv.n_events > 0
    assert fv.n_reads == fv.n_writes > 0
    assert fv.bytes_read == fv.bytes_written > 0
    assert fv.n_ranks == 8
    assert fv.rank_imbalance_ratio == pytest.approx(1.0)
    assert 0.0 <= fv.metadata_op_fraction < 0.5
    # pipeline dynamics: every injected fault left its peak.
    assert fv.queue_depth_peak > 0          # trunk-link degrade
    assert fv.slow_pending_peak > 0         # slow store
    assert fv.daemons_failed_peak > 0       # daemon crash
    assert fv.store_replicas_down_peak > 0  # store crash
    # exemplar trace: the drill-down link every verdict cites.
    assert fv.slowest_trace_id != ""
    assert fv.slowest_trace_e2e_s > 0


def test_risk_fractions_are_fractions(faulted):
    fv = job_features(faulted.world, faulted.result.job_id)
    assert 0.0 <= fv.read_risk <= 1.0
    assert 0.0 <= fv.write_risk <= 1.0


def test_features_are_deterministic(faulted):
    a = job_features(faulted.world, faulted.result.job_id)
    b = job_features(faulted.world, faulted.result.job_id)
    assert a == b
    assert a.to_dict() == b.to_dict()
