"""Forensics over real captures: timelines, diffs, ground-truth matches.

One chaos capture and one clean control capture (module-scoped — these
are full simulated campaigns) back every test here, mirroring exactly
what ``repro forensics`` runs.
"""

import pytest

from repro.diagnosis.forensics import (
    bundle_timeline,
    capture_campaign,
    chaos_plan,
    diff_bundles,
    diff_panel,
    match_bundles,
    timeline_panel,
)


@pytest.fixture(scope="module")
def chaos():
    return capture_campaign(seed=42, fast=True)


@pytest.fixture(scope="module")
def clean():
    return capture_campaign(seed=42, fast=True, faults=None,
                            snapshot_id="clean-0")


# ------------------------------------------------------------- capture


def test_chaos_capture_freezes_bundles(chaos):
    assert chaos.bundles
    for bundle in chaos.bundles:
        assert bundle.trigger_kind in (
            "alert_firing", "quorum_degraded", "store_crash",
            "deadletter_growth",
        )
        w0, w1 = bundle.window
        assert w0 <= bundle.t_trigger <= w1
        assert bundle.n_records() > 0


def test_rings_reconcile_after_chaos(chaos):
    recorder = chaos.recorder
    assert recorder.ticks > 0
    assert recorder.reconciles()
    for name, ring in recorder.rings.items():
        assert ring.captured == ring.retained + ring.evicted, name
    # The frozen ledger snapshots inside each bundle reconcile too.
    for bundle in chaos.bundles:
        for name, stream in bundle.streams.items():
            assert stream["captured"] == (
                stream["retained"] + stream["evicted"]
            ), (bundle.bundle_id, name)


def test_evidence_links_are_cross_layer(chaos):
    from repro.diagnosis.signals import default_catalog

    catalog = default_catalog()
    spans = chaos.world.telemetry.traces
    for bundle in chaos.bundles:
        evidence = bundle.evidence
        assert evidence["rules"], bundle.bundle_id
        # Every evidence signal is a real catalog row feeding one of
        # the evidence rules.
        for name in evidence["signals"]:
            signal = catalog.get(name)
            assert signal is not None and signal.rule in evidence["rules"]
        # Trace ids resolve into the span registry.
        assert evidence["trace_id_count"] >= len(evidence["trace_ids"])
        for trace_id in evidence["trace_ids"]:
            assert trace_id in spans
        # Incident ids resolve into the incident log.
        incidents = chaos.world.diagnosis.incidents
        for incident_id in evidence["incidents"]:
            assert 0 <= incident_id < len(incidents)


def test_bundle_json_byte_stable_across_same_seed_runs(chaos):
    again = capture_campaign(seed=42, fast=True)
    assert [b.to_canonical_json() for b in chaos.bundles] == [
        b.to_canonical_json() for b in again.bundles
    ]


def test_clean_run_triggers_nothing(clean):
    kinds = [b.trigger_kind for b in clean.bundles]
    assert kinds == ["manual"]  # only the requested snapshot
    assert clean.recorder.triggers_dropped == 0
    snap = clean.find("clean-0")
    assert snap is not None
    assert snap.window[0] == 0.0


def test_max_bundles_cap_counts_dropped_triggers():
    from repro.telemetry.flightrec import FlightRecorder, FlightRecorderConfig

    chaos_run = capture_campaign(seed=42, fast=True)
    recorder = chaos_run.recorder
    # Re-drive the same triggers against a capped recorder state.
    capped = FlightRecorder(
        chaos_run.world, FlightRecorderConfig(max_bundles=1),
    )
    for i, bundle in enumerate(recorder.bundles):
        capped._trigger(bundle.t_trigger + chaos_run.epoch + i * 10.0,
                        bundle.trigger_kind, bundle.trigger_detail,
                        bundle.rule)
    capped.flush()
    assert capped.bundles_frozen == 1
    assert capped.triggers_dropped == len(recorder.bundles) - 1


# ------------------------------------------------------------- timeline


def test_timeline_is_sorted_and_deterministic(chaos):
    bundle = chaos.bundles[0]
    rows = bundle_timeline(bundle)
    assert rows == bundle_timeline(bundle)
    assert len(rows) == bundle.n_records()
    times = [row["t"] for row in rows]
    assert times == sorted(times)
    streams_seen = {row["stream"] for row in rows}
    assert "alerts" in streams_seen  # the trigger itself is in there
    for row in rows:
        assert set(row) == {"t", "stream", "event", "detail"}


def test_timeline_panel_renders_through_panel_machinery(chaos):
    from repro.webservices.grafana import render_ascii

    panel = timeline_panel(chaos.bundles[0])
    assert panel.viz == "table"
    assert chaos.bundles[0].bundle_id in panel.title
    text = render_ascii(panel, width=100)
    assert "stream" in text and "alerts" in text


# ----------------------------------------------------------------- diff


def test_diff_bundle_with_itself_is_identical(chaos):
    bundle = chaos.bundles[0]
    diff = diff_bundles(bundle, bundle)
    assert diff.identical()
    assert diff.first is None
    assert diff.overlap == bundle.window


def test_diff_chaos_vs_clean_finds_first_divergence(chaos, clean):
    faulted = chaos.bundles[0]
    snap = clean.find("clean-0")
    diff = diff_bundles(faulted, snap)
    assert not diff.identical()
    first = diff.first
    assert first is not None
    # The faulted run diverges no later than its first applied fault
    # (plus one recorder tick of sampling slack).
    t_first_fault = min(f.t for f in chaos.applied) - chaos.epoch
    assert first.t <= t_first_fault + 0.1
    diverged = {d.stream for d in diff.divergences}
    assert "faults" in diverged  # the injected faults themselves
    # to_dict carries the verdict for --json consumers.
    d = diff.to_dict()
    assert d["first_divergence"]["stream"] == first.stream
    assert d["overlap"] is not None


def test_diff_without_window_overlap_compares_nothing(chaos):
    a = chaos.bundles[0]
    from repro.telemetry.flightrec import ForensicBundle

    far = ForensicBundle(
        bundle_id="far", trigger_kind="manual", trigger_detail="x",
        rule="", t_trigger=1000.0, window=(999.0, 1001.0),
        streams={name: {"records": [], "captured": 0, "evicted": 0,
                        "retained": 0} for name in a.streams},
        evidence={"rules": [], "signals": [], "incidents": [],
                  "trace_ids": [], "trace_id_count": 0, "store_seq": []},
    )
    diff = diff_bundles(a, far)
    assert diff.overlap is None
    assert diff.identical()


def test_diff_panel_title_names_first_divergence(chaos, clean):
    diff = diff_bundles(chaos.bundles[0], clean.find("clean-0"))
    panel = diff_panel(diff)
    assert "first divergence" in panel.title
    assert panel.payload  # one row per diverging stream


# ----------------------------------------------------- ground-truth match


def test_every_fault_class_matches_a_bundle(chaos):
    matches = match_bundles(chaos.applied, chaos.bundles, chaos.epoch)
    assert set(matches) == {"daemon_crash", "link_degrade", "slow_store"}
    for cls, match in matches.items():
        assert match.matched, cls
        assert match.windows >= 1
        for signals in match.bundles.values():
            assert signals  # the evidence names the detecting signal


def test_match_requires_signal_evidence(chaos):
    # Strip the signal evidence: matching must fail even though the
    # trigger times still fall inside the fault windows.
    import copy

    stripped = []
    for bundle in chaos.bundles:
        clone = copy.deepcopy(bundle)
        clone.evidence["signals"] = []
        stripped.append(clone)
    matches = match_bundles(chaos.applied, stripped, chaos.epoch)
    assert all(not m.matched for m in matches.values())


def test_chaos_plan_covers_all_scored_classes():
    from repro.diagnosis.scoring import DETECTORS

    plan = chaos_plan()
    kinds = {type(f).__name__ for f in plan.faults}
    assert kinds == {"DaemonCrash", "LinkDegrade", "SlowStore"}
    # Every class the plan injects has a detector set to match against.
    assert {"daemon_crash", "link_degrade", "slow_store"} <= set(DETECTORS)
