"""Rule construction and evaluation against synthetic window views."""

import pytest

from repro.diagnosis import Rule, RuleEval, SeriesWindow, default_rules
from repro.diagnosis.engine import DiagnosisConfig


class _FakeView:
    """A WindowView stand-in: hand-built series + rank counts."""

    def __init__(self, window_s=1.0, rank_counts=None, slowest=None,
                 **series):
        self.window_s = window_s
        self._rank_counts = rank_counts or {}
        self._slowest = slowest
        self._series = {}
        for name, samples in series.items():
            s = SeriesWindow(name)
            for t, v in samples:
                s.append(t, v)
            self._series[name] = s

    def series(self, name):
        return self._series.setdefault(name, SeriesWindow(name))

    def rank_window_counts(self):
        return dict(self._rank_counts)

    def slowest_trace(self):
        return self._slowest


def _rule(rules, name):
    return next(r for r in rules if r.name == name)


@pytest.fixture
def rules():
    return default_rules(DiagnosisConfig())


def test_rule_validation():
    with pytest.raises(ValueError):
        Rule("r", "catastrophic", "bad severity", 0.0, lambda v: None)
    with pytest.raises(ValueError):
        Rule("r", "info", "negative hold", -1.0, lambda v: None)
    with pytest.raises(TypeError):
        Rule("r", "info", "not callable", 0.0, evaluate=42)


def test_default_rules_cover_the_issue_set(rules):
    names = {r.name for r in rules}
    assert {
        "daemon_down", "latency_slo", "throughput_collapse", "store_stall",
        "queue_backlog", "rank_imbalance", "spill_growth", "retry_growth",
        "deadletter_growth",
    } <= names


def test_daemon_down_rule(rules):
    rule = _rule(rules, "daemon_down")
    assert not rule.evaluate(_FakeView(daemons_failed=[(0, 0)])).active
    ev = rule.evaluate(_FakeView(daemons_failed=[(0, 1)]))
    assert ev.active and ev.value == 1.0


def test_latency_slo_needs_min_count(rules):
    rule = _rule(rules, "latency_slo")
    # 5 stored messages at 10s each: way over SLO but under min count.
    quiet = _FakeView(
        e2e_count=[(0, 0), (1, 5)], e2e_total_s=[(0, 0.0), (1, 50.0)]
    )
    assert not rule.evaluate(quiet).active
    loud = _FakeView(
        e2e_count=[(0, 0), (1, 50)], e2e_total_s=[(0, 0.0), (1, 500.0)]
    )
    ev = rule.evaluate(loud)
    assert ev.active and ev.value == pytest.approx(10.0)


def test_latency_slo_names_the_worst_trace(rules):
    rule = _rule(rules, "latency_slo")
    view = _FakeView(
        slowest=(12.5, "101:3:7"),
        e2e_count=[(0, 0), (1, 50)], e2e_total_s=[(0, 0.0), (1, 500.0)],
    )
    ev = rule.evaluate(view)
    assert ev.active
    assert "worst 12.5000s trace 101:3:7" in ev.detail
    # Without a retained exemplar the detail simply omits the clause.
    bare = rule.evaluate(_FakeView(
        e2e_count=[(0, 0), (1, 50)], e2e_total_s=[(0, 0.0), (1, 500.0)],
    ))
    assert bare.active and "worst" not in bare.detail


def test_throughput_collapse_requires_backlog(rules):
    rule = _rule(rules, "throughput_collapse")
    # 100/s baseline for 4 windows, then a dead stop.
    ramp = [(t, 100 * min(t, 4)) for t in range(6)]
    stalled = _FakeView(stored_total=ramp, ingest_backlog=[(5, 40)])
    ev = rule.evaluate(stalled)
    assert ev.active and ev.value == pytest.approx(0.0)
    # Same stop with nothing owed: a finished job, not a collapse.
    quiesced = _FakeView(stored_total=ramp, ingest_backlog=[(5, 0)])
    assert not rule.evaluate(quiesced).active
    # No baseline yet: silent regardless of rate.
    cold = _FakeView(stored_total=[(0, 0)], ingest_backlog=[(0, 10)])
    assert not rule.evaluate(cold).active


def test_rank_imbalance_thresholds(rules):
    rule = _rule(rules, "rank_imbalance")
    # One of eight ranks hogging far above the mean (worst/mean is
    # bounded by the rank count, so skew needs enough ranks to show).
    skewed = _FakeView(
        rank_counts={0: 120, **{r: 2 for r in range(1, 8)}}
    )
    ev = rule.evaluate(skewed)
    assert ev.active and ev.value > 4.0
    balanced = _FakeView(rank_counts={r: 40 for r in range(8)})
    assert not rule.evaluate(balanced).active
    sparse = _FakeView(rank_counts={0: 10, 1: 1})
    assert not rule.evaluate(sparse).active  # below min_events


def test_growth_rules_use_window_deltas(rules):
    retry = _rule(rules, "retry_growth")
    # Retries happened long ago, none in the current window.
    stale = _FakeView(retries_total=[(0, 5), (10, 5)])
    assert not retry.evaluate(stale).active
    fresh = _FakeView(retries_total=[(9.0, 5), (10, 8)])
    ev = retry.evaluate(fresh)
    assert ev.active and ev.value == pytest.approx(3.0)


def test_rule_eval_is_plain_data():
    ev = RuleEval(True, 1.5, 1.0, "detail")
    assert (ev.active, ev.value, ev.threshold, ev.detail) == (
        True, 1.5, 1.0, "detail"
    )
