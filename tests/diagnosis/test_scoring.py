"""Ground-truth correlation: fault windows, detection latency, P/R."""

from dataclasses import dataclass

import pytest

from repro.diagnosis import (
    DETECTORS,
    Alert,
    IncidentLog,
    fault_windows,
    score_incidents,
)


@dataclass(frozen=True)
class _Applied:
    """Shape-compatible stand-in for faults.injector.AppliedFault."""

    t: float
    kind: str
    detail: str


def _fired(rule: str, t: float, severity: str = "warning") -> Alert:
    a = Alert(rule=rule, severity=severity, t_pending=t - 0.1)
    a.fire(t)
    return a


def test_fault_windows_pairs_begin_end():
    applied = [
        _Applied(0.1, "slow_store_begin", "shirley"),
        _Applied(0.2, "link_degrade", "a -- b x50"),
        _Applied(0.5, "slow_store_end", "shirley"),
        _Applied(0.5, "link_restore", "a -- b"),  # detail drift: no x50
        _Applied(0.7, "daemon_crash", "l1 (head)"),  # never recovers
    ]
    windows = fault_windows(applied)
    assert [(w.cls, w.t_begin, w.t_end) for w in windows] == [
        ("slow_store", 0.1, 0.5),
        ("link_degrade", 0.2, 0.5),
        ("daemon_crash", 0.7, None),
    ]


def test_score_matches_earliest_alert_and_latency():
    applied = [
        _Applied(1.0, "slow_store_begin", "shirley"),
        _Applied(2.0, "slow_store_end", "shirley"),
    ]
    log = IncidentLog()
    log.record(_fired("store_stall", 1.8))
    log.record(_fired("store_stall", 1.4))  # earlier: becomes the detection
    score = score_incidents(log, applied)
    (det,) = score.detections
    assert det.detected and det.rule == "store_stall"
    assert det.latency_s == pytest.approx(0.4)
    assert score.recall == 1.0
    assert score.precision == 1.0  # both alerts matched the window
    assert score.ok()


def test_alert_outside_grace_is_false_positive():
    applied = [
        _Applied(1.0, "slow_store_begin", "shirley"),
        _Applied(2.0, "slow_store_end", "shirley"),
    ]
    log = IncidentLog()
    log.record(_fired("store_stall", 4.0))  # after t_end + grace
    score = score_incidents(log, applied, grace_s=1.0)
    (det,) = score.detections
    assert not det.detected
    assert score.undetected_classes() == ["slow_store"]
    assert not score.ok()
    assert len(score.false_positives) == 1
    assert score.precision == 0.0


def test_wrong_rule_does_not_detect():
    applied = [
        _Applied(0.0, "daemon_crash", "l1 (head)"),
    ]
    log = IncidentLog()
    log.record(_fired("store_stall", 0.2))  # not in daemon_crash detectors
    score = score_incidents(log, applied)
    assert score.undetected_classes() == ["daemon_crash"]
    assert "store_stall" not in DETECTORS["daemon_crash"]


def test_open_window_matches_to_end_of_run():
    applied = [_Applied(0.0, "daemon_crash", "l1 (head)")]
    log = IncidentLog()
    log.record(_fired("daemon_down", 99.0, severity="critical"))
    score = score_incidents(log, applied)
    assert score.ok()
    assert score.detections[0].latency_s == pytest.approx(99.0)


def test_empty_everything_scores_clean():
    score = score_incidents(IncidentLog(), [])
    assert score.ok()
    assert score.recall == 1.0 and score.precision == 1.0
    assert score.to_dict()["ok"] is True
