"""SeriesWindow: the sliding-window queries rules are built on."""

import pytest

from repro.diagnosis import SeriesWindow


def _counter(samples):
    s = SeriesWindow("counter")
    for t, v in samples:
        s.append(t, v)
    return s


def test_empty_series_defaults():
    s = SeriesWindow("x")
    assert len(s) == 0
    assert s.latest == 0.0
    assert s.latest_t is None
    assert s.value_at(10.0) == 0.0
    assert s.delta(1.0) == 0.0
    assert s.rate(1.0) == 0.0
    assert s.baseline_rate(1.0) == 0.0
    assert s.max_over(1.0) == 0.0
    assert s.tail(1.0) == []


def test_append_rejects_time_travel():
    s = _counter([(0.0, 1), (1.0, 2)])
    with pytest.raises(ValueError):
        s.append(0.5, 3)
    # Equal timestamps are fine (two ticks can coincide).
    s.append(1.0, 3)
    assert s.latest == 3.0


def test_value_at_is_step_function():
    s = _counter([(0.0, 10), (1.0, 20), (2.0, 30)])
    assert s.value_at(-0.5) == 0.0
    assert s.value_at(0.0) == 10.0
    assert s.value_at(0.9) == 10.0
    assert s.value_at(1.0) == 20.0
    assert s.value_at(5.0) == 30.0


def test_delta_and_rate_over_window():
    # Counter climbing 10/s for 4 seconds.
    s = _counter([(t, 10 * t) for t in range(5)])
    assert s.delta(2.0) == pytest.approx(20.0)
    assert s.rate(2.0) == pytest.approx(10.0)
    # Window wider than history: delta from zero-valued prehistory.
    assert s.delta(100.0) == pytest.approx(40.0)
    with pytest.raises(ValueError):
        s.rate(0.0)


def test_baseline_rate_excludes_current_window():
    # 10/s for 4s, then flat: the current window's stall must not
    # contaminate the trailing baseline it is compared against.
    s = _counter([(0, 0), (1, 10), (2, 20), (3, 30), (4, 40), (5, 40)])
    assert s.rate(1.0) == pytest.approx(0.0)  # stalled now
    assert s.baseline_rate(1.0, n_windows=4) == pytest.approx(10.0)
    # Not enough history -> 0.0, never an exception.
    short = _counter([(0.0, 5)])
    assert short.baseline_rate(10.0) == 0.0


def test_max_over_and_tail():
    s = _counter([(0, 1), (1, 7), (2, 3), (3, 2)])
    assert s.max_over(1.5) == 3.0
    assert s.max_over(10.0) == 7.0
    assert s.tail(1.0) == [(2, 3.0), (3, 2.0)]
    assert s.tail(0.0) == [(3, 2.0)]


def test_baseline_over_empty_sample_gap():
    # A long quiet gap between two samples: the baseline windows fall
    # entirely inside the gap, where the step function is flat, so the
    # trailing baseline is 0 — a stall after a gap must not divide by
    # a phantom rate.
    s = _counter([(0.0, 50.0), (100.0, 50.0)])
    assert s.baseline_rate(1.0, n_windows=4) == 0.0
    assert s.rate(1.0) == 0.0
    # ...and with the gap spanned entirely, the rate reappears.
    assert s.delta(200.0) == pytest.approx(50.0)


def test_single_sample_rate_counts_from_prehistory_zero():
    # One sample: the window reaches into zero-valued prehistory, so
    # rate == value / window, never a ZeroDivisionError or IndexError.
    s = _counter([(5.0, 12.0)])
    assert s.rate(2.0) == pytest.approx(6.0)
    assert s.delta(2.0) == pytest.approx(12.0)
    assert s.baseline_rate(2.0) == 0.0
    assert s.max_over(2.0) == 12.0


def test_delta_across_rearmed_engine_spikes_once():
    # A re-armed engine starts fresh SeriesWindows while the world's
    # cumulative counters keep their values, so the first sample lands
    # late and large.  delta() then reports the whole counter as one
    # window's growth (prehistory is zero) — a documented one-window
    # spike, flat again from the second sample on.
    rearmed = SeriesWindow("stored_total")
    rearmed.append(60.0, 4000.0)  # first tick after the re-arm
    assert rearmed.delta(0.25) == pytest.approx(4000.0)  # the spike
    rearmed.append(60.25, 4000.0)
    assert rearmed.delta(0.25) == pytest.approx(0.0)  # settled
