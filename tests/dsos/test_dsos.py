"""Tests for DSOS: schemas, indices, sharded ingest, parallel queries."""

import pytest

from repro.dsos import (
    Attr,
    DARSHAN_DATA_SCHEMA,
    DsosClient,
    DsosCluster,
    Schema,
    SchemaError,
    SortedIndex,
)


@pytest.fixture
def schema():
    return Schema(
        "events",
        [
            Attr("job_id", "int"),
            Attr("rank", "int"),
            Attr("timestamp", "float"),
            Attr("op", "string"),
        ],
        {
            "job_rank_time": ("job_id", "rank", "timestamp"),
            "time": ("timestamp",),
        },
    )


@pytest.fixture
def cluster(schema):
    c = DsosCluster("test", n_daemons=3)
    c.attach_schema(schema)
    return c


def _event(job, rank, ts, op="write"):
    return {"job_id": job, "rank": rank, "timestamp": float(ts), "op": op}


# ------------------------------------------------------------------ Schema


def test_schema_validation_accepts_good_object(schema):
    schema.validate(_event(1, 0, 1.5))


def test_schema_rejects_missing_and_unknown_attrs(schema):
    with pytest.raises(SchemaError, match="missing"):
        schema.validate({"job_id": 1})
    with pytest.raises(SchemaError, match="unknown attribute"):
        schema.validate({**_event(1, 0, 1.0), "bogus": 2})


def test_schema_rejects_wrong_type(schema):
    bad = _event(1, 0, 1.0)
    bad["rank"] = "three"
    with pytest.raises(SchemaError, match="expects int"):
        schema.validate(bad)


def test_int_accepted_where_float_declared(schema):
    obj = _event(1, 0, 1.0)
    obj["timestamp"] = 7  # int into float attr
    schema.validate(obj)


def test_schema_definition_errors():
    with pytest.raises(SchemaError):
        Attr("x", "blob")
    with pytest.raises(SchemaError):
        Schema("", [Attr("a", "int")], {})
    with pytest.raises(SchemaError):
        Schema("s", [], {})
    with pytest.raises(SchemaError):
        Schema("s", [Attr("a", "int"), Attr("a", "int")], {})
    with pytest.raises(SchemaError):
        Schema("s", [Attr("a", "int")], {"idx": ("ghost",)})
    with pytest.raises(SchemaError):
        Schema("s", [Attr("a", "int")], {"idx": ()})


def test_key_for_joint_index(schema):
    key = schema.key_for("job_rank_time", _event(5, 2, 9.0))
    assert key == (5, 2, 9.0)
    with pytest.raises(SchemaError):
        schema.key_for("nope", _event(1, 1, 1.0))


def test_darshan_schema_has_paper_indices():
    assert "job_rank_time" in DARSHAN_DATA_SCHEMA.indices
    assert DARSHAN_DATA_SCHEMA.indices["job_rank_time"] == (
        "job_id",
        "rank",
        "timestamp",
    )
    assert "timestamp" in DARSHAN_DATA_SCHEMA.attrs
    assert "seg_dur" in DARSHAN_DATA_SCHEMA.attrs


# ------------------------------------------------------------------- Index


def test_sorted_index_orders_lazily():
    idx = SortedIndex("t", ("a",))
    for i, v in enumerate([5, 1, 3, 2, 4]):
        idx.add((v,), i)
    assert [k for k, _ in idx.iter_sorted()] == [(1,), (2,), (3,), (4,), (5,)]
    assert len(idx) == 5


def test_sorted_index_range_half_open():
    idx = SortedIndex("t", ("a",))
    for i in range(10):
        idx.add((i,), i)
    assert idx.range((3,), (7,)) == [3, 4, 5, 6]
    assert idx.range(None, (2,)) == [0, 1]
    assert idx.range((8,), None) == [8, 9]


def test_sorted_index_prefix_range():
    idx = SortedIndex("t", ("job", "rank"))
    oid = 0
    for job in (1, 2):
        for rank in range(3):
            idx.add((job, rank), oid)
            oid += 1
    assert idx.prefix_range((1,)) == [0, 1, 2]
    assert idx.prefix_range((2,)) == [3, 4, 5]
    assert idx.prefix_range((2, 1)) == [4]
    with pytest.raises(ValueError):
        idx.prefix_range((1, 2, 3))


def test_sorted_index_add_after_query():
    idx = SortedIndex("t", ("a",))
    idx.add((2,), 0)
    assert idx.range(None, None) == [0]
    idx.add((1,), 1)  # add after materialization
    assert idx.range(None, None) == [1, 0]


def test_sorted_index_key_arity_checked():
    idx = SortedIndex("t", ("a", "b"))
    with pytest.raises(ValueError):
        idx.add((1,), 0)


def test_sorted_index_min_max():
    idx = SortedIndex("t", ("a",))
    assert idx.min_key() is None
    idx.add((3,), 0)
    idx.add((1,), 1)
    assert idx.min_key() == (1,)
    assert idx.max_key() == (3,)


# ----------------------------------------------------------------- Cluster


def test_ingest_round_robins_across_daemons(cluster):
    for i in range(9):
        cluster.insert("events", _event(1, i, float(i)))
    counts = [d.count("events") for d in cluster.daemons]
    assert counts == [3, 3, 3]
    assert cluster.count("events") == 9


def test_query_merges_shards_in_index_order(cluster):
    import random

    rng = random.Random(0)
    ts = list(range(50))
    rng.shuffle(ts)
    for t in ts:
        cluster.insert("events", _event(1, t % 4, float(t)))
    result = cluster.query("events", "time").execute()
    stamps = [r["timestamp"] for r in result]
    assert stamps == sorted(stamps)
    assert len(result) == 50
    assert result.stats.shards_queried == 3


def test_query_prefix_selects_job_and_rank(cluster):
    for job in (10, 20):
        for rank in range(4):
            for t in range(5):
                cluster.insert("events", _event(job, rank, float(t)))
    result = cluster.query("events", "job_rank_time").prefix(20, 2).execute()
    assert len(result) == 5
    assert all(r["job_id"] == 20 and r["rank"] == 2 for r in result)
    # The paper's example: ordered by time within the (job, rank) prefix.
    assert [r["timestamp"] for r in result] == [0.0, 1.0, 2.0, 3.0, 4.0]


def test_query_range_on_joint_key(cluster):
    for t in range(20):
        cluster.insert("events", _event(1, 0, float(t)))
    result = (
        cluster.query("events", "job_rank_time")
        .range((1, 0, 5.0), (1, 0, 10.0))
        .execute()
    )
    assert [r["timestamp"] for r in result] == [5.0, 6.0, 7.0, 8.0, 9.0]


def test_query_where_filter_and_stats(cluster):
    for t in range(30):
        cluster.insert("events", _event(1, 0, float(t), op="write" if t % 3 else "read"))
    result = (
        cluster.query("events", "time").where("op", "==", "read").execute()
    )
    assert all(r["op"] == "read" for r in result)
    assert result.stats.rows_scanned == 30
    assert result.stats.rows_returned == 10
    assert result.stats.est_latency_s > 0


def test_query_limit(cluster):
    for t in range(30):
        cluster.insert("events", _event(1, 0, float(t)))
    result = cluster.query("events", "time").limit(7).execute()
    assert len(result) == 7
    with pytest.raises(ValueError):
        cluster.query("events", "time").limit(0)


def test_query_unknown_index_and_schema(cluster):
    with pytest.raises(SchemaError):
        cluster.query("events", "bogus_index")
    with pytest.raises(SchemaError):
        cluster.query("ghosts", "time")
    with pytest.raises(SchemaError):
        cluster.insert("ghosts", {})


def test_query_bad_filter_op(cluster):
    cluster.insert("events", _event(1, 0, 1.0))
    with pytest.raises(ValueError):
        cluster.query("events", "time").where("op", "~=", "x").execute()


def test_cluster_validation(schema):
    with pytest.raises(ValueError):
        DsosCluster("x", n_daemons=0)
    c = DsosCluster("x", 1)
    c.attach_schema(schema)
    with pytest.raises(SchemaError):
        c.attach_schema(schema)


def test_index_choice_changes_scan_cost(cluster):
    """The paper: "each index provided a different query performance"."""
    for job in range(5):
        for t in range(40):
            cluster.insert("events", _event(job, t % 4, float(t)))
    # Query for job 3 via the job-prefixed index: narrow scan.
    narrow = cluster.query("events", "job_rank_time").prefix(3).execute()
    # Same rows via the time index with a filter: full scan.
    wide = cluster.query("events", "time").where("job_id", "==", 3).execute()
    assert len(narrow) == len(wide) == 40
    assert narrow.stats.rows_scanned < wide.stats.rows_scanned
    assert narrow.stats.est_latency_s < wide.stats.est_latency_s


# ------------------------------------------------------------------ Client


def test_client_roundtrip(cluster):
    client = DsosClient(cluster)
    client.insert_many("events", (_event(1, 0, float(t)) for t in range(10)))
    assert client.count("events") == 10
    res = client.query("events", "job_rank_time", prefix=(1, 0), limit=3)
    assert len(res) == 3


def test_client_ensure_schema_idempotent():
    c = DsosCluster("x", 2)
    client = DsosClient(c)
    client.ensure_schema(DARSHAN_DATA_SCHEMA)
    client.ensure_schema(DARSHAN_DATA_SCHEMA)  # no error
    assert "darshan_data" in c.schemas
