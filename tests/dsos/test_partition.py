"""Tests for time-partitioned containers with retention."""

import pytest

from repro.dsos import Attr, Schema, SchemaError
from repro.dsos.partition import PartitionedContainer

DAY = 86400.0


@pytest.fixture
def schema():
    return Schema(
        "events",
        [Attr("timestamp", "float"), Attr("v", "int")],
        {"time": ("timestamp",)},
    )


@pytest.fixture
def container(schema):
    return PartitionedContainer(
        "darshan", schema, partition_seconds=DAY, max_active_partitions=3
    )


def _obj(t, v=0):
    return {"timestamp": float(t), "v": v}


def test_objects_route_to_time_partition(container):
    container.insert(_obj(0.5 * DAY))
    container.insert(_obj(1.5 * DAY))
    parts = [p for p in container.partitions() if p.state == "active"]
    assert [p.index for p in parts] == [0, 1]
    assert all(p.objects == 1 for p in parts)
    assert container.count() == 2


def test_partition_window_bounds(container):
    container.insert(_obj(2.2 * DAY))
    p = container.partitions()[0]
    assert p.t_begin == 2 * DAY
    assert p.t_end == 3 * DAY


def test_retention_retires_oldest(container):
    for day in range(5):
        for _ in range(10):
            container.insert(_obj((day + 0.5) * DAY))
    states = {p.index: p.state for p in container.partitions()}
    assert states[0] == "offline"
    assert states[1] == "offline"
    assert states[4] == "active"
    assert container.objects_retired == 20
    assert container.count() == 30


def test_insert_into_offline_partition_rejected(container):
    for day in range(4):
        container.insert(_obj((day + 0.5) * DAY))
    with pytest.raises(SchemaError, match="offline"):
        container.insert(_obj(0.5 * DAY))


def test_query_spans_partitions_in_time_order(container):
    for day in (1, 0, 2):
        for k in range(3):
            container.insert(_obj(day * DAY + k * 100.0, v=day * 10 + k))
    rows = container.query("time")
    stamps = [r["timestamp"] for r in rows]
    assert stamps == sorted(stamps)
    assert len(rows) == 9


def test_query_with_filter(container):
    for k in range(6):
        container.insert(_obj(k * 1000.0, v=k % 2))
    rows = container.query("time", where=[("v", "==", 1)])
    assert len(rows) == 3


def test_validation(schema):
    with pytest.raises(ValueError):
        PartitionedContainer("x", schema, partition_seconds=0)
    with pytest.raises(ValueError):
        PartitionedContainer("x", schema, max_active_partitions=0)
    with pytest.raises(SchemaError):
        PartitionedContainer("x", schema, time_attr="ghost")
    c = PartitionedContainer("x", schema)
    with pytest.raises(SchemaError, match="numeric"):
        c.insert({"timestamp": "noon", "v": 1})


def test_schema_validation_applies(container):
    with pytest.raises(SchemaError):
        container.insert({"timestamp": 1.0, "v": "not an int"})
