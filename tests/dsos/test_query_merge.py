"""Sharded query fan-out: index-ordered merge, replica fallback.

Satellite pins from the replication issue: the per-shard merge keeps
index order with duplicate keys across shards, tolerates an empty
shard, answers from the surviving replica when one is down, raises
:class:`StoreDownError` only when a whole replica set is dead, and
``.quorum()`` read-repairs a lagging primary before scanning it.
"""

import pytest

from repro.dsos import Attr, DsosCluster, Schema
from repro.dsos.daemon import StoreDownError


def _schema():
    return Schema(
        "events",
        [
            Attr("job_id", "int"),
            Attr("rank", "int"),
            Attr("timestamp", "float"),
        ],
        {
            "time_job": ("timestamp", "job_id"),
            "job_time": ("job_id", "timestamp"),
        },
    )


def _event(job, rank, ts):
    return {"job_id": job, "rank": rank, "timestamp": float(ts)}


@pytest.fixture
def cluster():
    c = DsosCluster("q", shards=2, replication=2)
    c.attach_schema(_schema())
    return c


def _job_for_shard(c):
    """shard -> a job id routing there."""
    out = {}
    for job in range(1000):
        out.setdefault(c.shard_of("events", _event(job, 0, 0.0)), job)
        if len(out) == c.shards:
            return out
    raise AssertionError("job-hash never covered the shards")


def test_duplicate_keys_across_shards_merge_in_index_order(cluster):
    jobs = _job_for_shard(cluster)
    # The same timestamps land on both shards: the merged stream must
    # be globally sorted on the full (timestamp, job_id) index key, so
    # equal timestamps interleave deterministically by job id.
    for ts in (0.3, 0.1, 0.2):
        for shard in (0, 1):
            cluster.insert_replicated("events", _event(jobs[shard], 0, ts))
    result = cluster.query("events", "time_job").execute()
    keys = [(r["timestamp"], r["job_id"]) for r in result]
    assert keys == sorted(keys)
    assert len(result) == 6
    assert result.stats.shards_queried == 2
    assert result.stats.replicas_skipped == 0


def test_empty_shard_contributes_nothing_but_is_scanned(cluster):
    jobs = _job_for_shard(cluster)
    for i in range(5):
        cluster.insert_replicated("events", _event(jobs[0], 0, 0.1 * i))
    result = cluster.query("events", "time_job").execute()
    assert len(result) == 5
    assert result.stats.shards_queried == 2
    assert sorted(result.stats.rows_scanned_per_shard) == [0, 5]


def test_one_dead_replica_per_shard_is_tolerated(cluster):
    jobs = _job_for_shard(cluster)
    for i in range(8):
        for shard in (0, 1):
            cluster.insert_replicated(
                "events", _event(jobs[shard], i % 2, 0.1 * i)
            )
    full = cluster.query("events", "time_job").execute()
    # Kill one replica in each shard (the primary in shard 0, the
    # secondary in shard 1): the fan-out must route around both.
    cluster.crash_daemon(cluster.replica_sets[0][0])
    cluster.crash_daemon(cluster.replica_sets[1][1])
    degraded = cluster.query("events", "time_job").execute()
    assert degraded.rows == full.rows
    assert degraded.stats.replicas_skipped == 2


def test_whole_replica_set_down_raises_store_down(cluster):
    jobs = _job_for_shard(cluster)
    cluster.insert_replicated("events", _event(jobs[0], 0, 0.0))
    for d in cluster.replica_sets[1]:
        cluster.crash_daemon(d)
    with pytest.raises(StoreDownError, match="shard 1"):
        cluster.query("events", "time_job").execute()


def test_quorum_read_repairs_lagging_primary(cluster):
    jobs = _job_for_shard(cluster)
    for i in range(10):
        cluster.insert_replicated("events", _event(jobs[0], 0, 0.1 * i))
    primary = cluster.replica_sets[0][0]
    cluster.crash_daemon(primary, tear_tail=True, tear_bytes=60)
    cluster.recover_daemon(primary)  # torn tail: primary is short
    assert len(primary.applied) < 10

    # A plain read answers from the lagging primary and misses rows.
    plain = cluster.query("events", "time_job").execute()
    assert len(plain) == len(primary.applied)

    # A quorum read repairs it first and sees every surviving object.
    quorum = cluster.query("events", "time_job").quorum().execute()
    assert len(quorum) == 10
    assert quorum.stats.read_repaired == 10 - len(plain)
    assert cluster.census().complete
    # And the repair is durable: plain reads are whole again.
    assert len(cluster.query("events", "time_job").execute()) == 10


def test_filters_and_limit_compose_with_sharded_merge(cluster):
    jobs = _job_for_shard(cluster)
    for i in range(12):
        for shard in (0, 1):
            cluster.insert_replicated(
                "events", _event(jobs[shard], i % 3, 0.1 * i)
            )
    result = (
        cluster.query("events", "time_job")
        .where("rank", "==", 0)
        .limit(5)
        .execute()
    )
    assert len(result) == 5
    assert all(r["rank"] == 0 for r in result)
    keys = [(r["timestamp"], r["job_id"]) for r in result]
    assert keys == sorted(keys)


def test_legacy_query_path_unchanged():
    c = DsosCluster("flat", n_daemons=3)
    c.attach_schema(_schema())
    for i in range(9):
        c.insert("events", _event(1, i % 3, 0.1 * i))
    result = c.query("events", "time_job").execute()
    assert len(result) == 9
    assert result.stats.shards_queried == 3  # one per daemon, not shard
    assert result.stats.replicas_skipped == 0
    assert result.stats.read_repaired == 0
