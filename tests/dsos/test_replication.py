"""Replicated sharded DSOS: quorum ingest, crash/recovery, anti-entropy.

The replica invariant under test: after recovery plus repair, every
accepted object holds ``copies(obj) >= min(R, live_replicas)`` — the
census must come back complete no matter which replica crashed, whether
its WAL lost a torn tail, and in which order recovery/repair ran.
"""

import pytest

from repro.dsos import Attr, DsosCluster, Schema, SchemaError
from repro.dsos.daemon import StoreDownError


def _schema():
    return Schema(
        "events",
        [
            Attr("job_id", "int"),
            Attr("rank", "int"),
            Attr("timestamp", "float"),
        ],
        {
            "job_rank_time": ("job_id", "rank", "timestamp"),
            "time": ("timestamp",),
        },
    )


def _cluster(shards=2, replication=2, **kw):
    c = DsosCluster("hot", shards=shards, replication=replication, **kw)
    c.attach_schema(_schema())
    return c


def _event(job, rank, ts):
    return {"job_id": job, "rank": rank, "timestamp": float(ts)}


def _jobs_on_distinct_shards(cluster, n=2):
    """Job ids hashing to n distinct shards (deterministic search)."""
    jobs, seen = [], set()
    for job in range(1000):
        shard = cluster.shard_of("events", _event(job, 0, 0.0))
        if shard not in seen:
            seen.add(shard)
            jobs.append(job)
            if len(jobs) == n:
                return jobs
    raise AssertionError("job-hash never covered the shards")


# ----------------------------------------------------------- topology


def test_sharded_topology_is_shards_times_replicas():
    c = _cluster(shards=3, replication=2)
    assert len(c.daemons) == 6
    assert [len(rs) for rs in c.replica_sets] == [2, 2, 2]
    for shard, replicas in enumerate(c.replica_sets):
        assert all(d.shard_id == shard for d in replicas)
        assert all(d.wal_enabled for d in replicas)


def test_majority_write_quorum_by_default():
    assert _cluster(replication=3).write_quorum == 2
    assert _cluster(replication=2).write_quorum == 2
    assert _cluster(replication=1, shards=2).write_quorum == 1


def test_write_quorum_validation():
    with pytest.raises(ValueError, match="write_quorum"):
        _cluster(replication=2, write_quorum=3)
    with pytest.raises(ValueError, match="write_quorum"):
        _cluster(replication=2, write_quorum=0)
    with pytest.raises(ValueError):
        DsosCluster("bad", shards=0)


def test_job_hash_routing_is_deterministic_and_job_local():
    c = _cluster(shards=4, replication=2)
    for job in range(20):
        shards = {
            c.shard_of("events", _event(job, rank, t))
            for rank in range(4)
            for t in (0.0, 1.5, 99.0)
        }
        assert len(shards) == 1  # one job -> one shard, any rank/time


# ------------------------------------------------------ quorum ingest


def test_full_quorum_write_lands_on_every_replica():
    c = _cluster()
    ack = c.insert_replicated("events", _event(1, 0, 0.5), trace_id="1:0:0")
    assert ack.accepted and ack.quorum_met
    assert ack.acks == 2 and ack.seq == 0
    replicas = c.replica_sets[ack.shard]
    assert all(d.count("events") == 1 for d in replicas)
    assert c.count("events") == 1  # distinct objects, not copies


def test_degraded_write_below_quorum_is_stored_and_counted():
    c = _cluster()
    shard = c.shard_of("events", _event(1, 0, 0.0))
    c.crash_daemon(c.replica_sets[shard][0])
    ack = c.insert_replicated("events", _event(1, 0, 0.0))
    assert ack.accepted and not ack.quorum_met
    assert ack.acks == 1
    assert c.quorum_degraded_writes == 1
    assert c.census().under_replicated == 0  # min(R, live)=1 is met


def test_rejected_write_consumes_no_sequence_number():
    c = _cluster()
    shard = c.shard_of("events", _event(1, 0, 0.0))
    for d in c.replica_sets[shard]:
        c.crash_daemon(d)
    ack = c.insert_replicated("events", _event(1, 0, 0.0))
    assert not ack.accepted and ack.seq is None
    assert c.rejected_writes == 1
    assert c._next_seq[shard] == 0
    # The other shard keeps accepting at full quorum.
    other_job = next(
        j for j in range(100)
        if c.shard_of("events", _event(j, 0, 0.0)) != shard
    )
    assert c.insert_replicated("events", _event(other_job, 0, 0.0)).quorum_met


def test_insert_and_insert_many_delegate_to_replication():
    c = _cluster()
    c.insert("events", _event(1, 0, 0.0))
    c.insert_many("events", [_event(1, 0, 1.0), _event(2, 1, 2.0)])
    assert c.writes == 3
    assert c.count("events") == 3


def test_legacy_cluster_refuses_replication_api():
    c = DsosCluster("flat", n_daemons=3)
    c.attach_schema(_schema())
    with pytest.raises(SchemaError, match="sharded"):
        c.insert_replicated("events", _event(1, 0, 0.0))
    with pytest.raises(SchemaError, match="sharded"):
        c.crash_daemon(0)
    assert c.health_summary() == {
        "replicas_down": 0, "under_replicated": 0, "lost": 0,
        "replica_lag": 0, "shard_skew": 0,
    }


# ------------------------------------------- crash / recover / repair


def _fill(c, n=30):
    jobs = _jobs_on_distinct_shards(c)
    for i in range(n):
        job = jobs[i % len(jobs)]
        c.insert_replicated(
            "events", _event(job, i % 4, 0.1 * i), trace_id=f"{job}:{i}"
        )
    return jobs


def test_crash_degrades_census_and_recovery_replays_wal():
    c = _cluster()
    _fill(c)
    victim = c.replica_sets[0][0]
    applied_before = set(victim.applied)

    c.crash_daemon(victim)
    census = c.census()
    assert census.replicas_down == 1
    assert census.under_replicated == 0  # peer holds quorum for live=1
    assert 0 in census.degraded_shards
    assert not victim.alive and victim.count("events") == 0

    recovery = c.recover_daemon(victim)
    assert not recovery.truncated
    assert set(victim.applied) == applied_before
    assert victim.wal_replayed == len(applied_before)
    assert c.census().complete
    assert c.census().replicas_down == 0


def test_torn_tail_needs_anti_entropy_repair():
    c = _cluster()
    _fill(c)
    victim = c.replica_sets[0][0]
    applied_before = set(victim.applied)

    c.crash_daemon(victim, tear_tail=True, tear_bytes=40)
    recovery = c.recover_daemon(victim)
    assert recovery.truncated
    missing = applied_before - set(victim.applied)
    assert missing  # the torn tail really lost records
    assert c.census().under_replicated == len(missing)

    pulled = c.repair_daemon(victim)
    assert sorted(seq for seq, _ in pulled) == sorted(missing)
    assert victim.repair_pulled == len(missing)
    assert set(victim.applied) == applied_before
    assert c.census().complete


def test_repair_is_idempotent():
    c = _cluster()
    _fill(c)
    victim = c.replica_sets[0][1]
    c.crash_daemon(victim, tear_tail=True, tear_bytes=25)
    c.recover_daemon(victim)
    first = c.repair_daemon(victim)
    assert first
    assert c.repair_daemon(victim) == []
    assert c.repair_all()[victim.name] == []
    assert c.census().complete


def test_replica_invariant_after_every_single_crash():
    # Crash/recover/repair each daemon in turn: the census must come
    # back complete every time (copies >= min(R, live) for all objects).
    c = _cluster(shards=2, replication=3)
    _fill(c, n=40)
    for i, victim in enumerate(c.daemons):
        c.crash_daemon(victim, tear_tail=(i % 2 == 0), tear_bytes=30)
        c.recover_daemon(victim)
        c.repair_daemon(victim)
        census = c.census()
        assert census.complete, f"daemon {i}: {census}"
        assert census.replicas_down == 0


def test_writes_to_crashed_daemon_raise_store_down():
    c = _cluster()
    victim = c.replica_sets[0][0]
    c.crash_daemon(victim)
    with pytest.raises(StoreDownError, match=victim.name):
        victim.insert_seq("events", 0, _event(1, 0, 0.0))


def test_permanent_crash_objects_survive_on_peer():
    c = _cluster()
    _fill(c)
    total = c.count("events")
    c.crash_daemon(c.replica_sets[0][0])
    c.crash_daemon(c.replica_sets[1][1])
    census = c.census()
    assert census.lost == 0  # every object still has a live copy
    assert c.count("events") == total


# ------------------------------------------------------ observability


def test_health_summary_reports_lag_and_skew():
    c = _cluster()
    job_for_shard = {}
    for job in range(1000):
        job_for_shard.setdefault(
            c.shard_of("events", _event(job, 0, 0.0)), job
        )
        if len(job_for_shard) == 2:
            break
    victim = c.replica_sets[0][0]
    # Park the shard-0 victim dead and write: the live peer runs ahead.
    c.crash_daemon(victim)
    for i in range(6):
        c.insert_replicated("events", _event(job_for_shard[0], 0, float(i)))
    for i in range(2):
        c.insert_replicated("events", _event(job_for_shard[1], 0, float(i)))
    c.recover_daemon(victim)  # replay catches up only the WAL'd prefix
    health = c.health_summary()
    assert health["replica_lag"] == 6  # victim missed 6 shard-0 writes
    assert health["shard_skew"] == 4   # 6 visible on shard 0 vs 2 on 1
    assert health["under_replicated"] == 6
    c.repair_daemon(victim)
    health = c.health_summary()
    assert health["replica_lag"] == 0
    assert health["under_replicated"] == 0


def test_stats_snapshot_qualifies_every_series_by_shard_and_daemon():
    c = _cluster()
    _fill(c, n=10)
    victim = c.replica_sets[0][0]
    c.crash_daemon(victim, tear_tail=True)
    c.recover_daemon(victim)
    c.repair_daemon(victim)
    snap = c.stats_snapshot()
    assert snap["sharded"] and snap["shards"] == 2
    assert snap["writes"] == 10
    names = {(d["daemon"], d["shard"]) for d in snap["daemons"]}
    assert len(names) == 4  # every (daemon, shard) pair distinct
    by_name = {d["daemon"]: d for d in snap["daemons"]}
    v = by_name[victim.name]
    assert v["crashes"] == 1
    assert v["wal_truncated_bytes"] > 0
    assert v["wal_replayed"] + v["repair_pulled"] == v["objects_stored"]
    for d in snap["daemons"]:
        assert {"wal_records", "wal_replayed", "wal_truncated_bytes",
                "repair_pulled"} <= set(d)
