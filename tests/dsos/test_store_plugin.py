"""Tests for the LDMS → DSOS store plugin."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.dsos import DARSHAN_DATA_SCHEMA, DsosClient, DsosCluster, DsosStreamStore
from repro.ldms import Ldmsd
from repro.sim import Environment, RngRegistry

TAG = "darshanConnector"


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def daemon(env):
    cluster = Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=1))
    return Ldmsd(env, cluster.analysis_node, cluster.network)


@pytest.fixture
def client():
    return DsosClient(DsosCluster("shirley", n_daemons=2))


def _message(op="write", rank=3, ts=1650000100.25):
    return {
        "uid": 99066,
        "exe": "/apps/hacc-io",
        "job_id": 259903,
        "rank": rank,
        "ProducerName": "nid00046",
        "file": "/scratch/part.dat",
        "record_id": 123456789,
        "module": "POSIX",
        "type": "MOD",
        "max_byte": 1048575,
        "switches": 2,
        "flushes": -1,
        "cnt": 7,
        "op": op,
        "seg": [
            {
                "data_set": "N/A",
                "pt_sel": -1,
                "irreg_hslab": -1,
                "reg_hslab": -1,
                "ndims": -1,
                "npoints": -1,
                "off": 0,
                "len": 1048576,
                "dur": 0.125,
                "timestamp": ts,
            }
        ],
    }


def test_store_inserts_flattened_objects(env, daemon, client):
    store = DsosStreamStore(daemon, TAG, client)
    daemon.publish_now(TAG, _message())
    assert store.objects_stored == 1
    assert client.count("darshan_data") == 1
    rows = client.query("darshan_data", "job_rank_time", prefix=(259903,)).rows
    assert rows[0]["seg_len"] == 1048576
    assert rows[0]["seg_dur"] == 0.125
    assert rows[0]["timestamp"] == 1650000100.25
    assert rows[0]["module"] == "POSIX"


def test_store_queryable_by_paper_index(env, daemon, client):
    DsosStreamStore(daemon, TAG, client)
    for rank in (2, 0, 1):
        for t in range(3):
            daemon.publish_now(TAG, _message(rank=rank, ts=1650000000.0 + t))
    res = client.query("darshan_data", "job_rank_time", prefix=(259903, 1))
    assert len(res) == 3
    assert [r["rank"] for r in res.rows] == [1, 1, 1]
    stamps = [r["timestamp"] for r in res.rows]
    assert stamps == sorted(stamps)


def test_store_handles_na_values(env, daemon, client):
    store = DsosStreamStore(daemon, TAG, client)
    msg = _message(op="open")
    msg["max_byte"] = "N/A"
    msg["seg"][0]["len"] = "N/A"
    daemon.publish_now(TAG, msg)
    row = client.query("darshan_data", "job_id", prefix=(259903,)).rows[0]
    assert row["max_byte"] == -1
    assert row["seg_len"] == -1
    assert store.parse_errors == 0


def test_store_counts_garbage(env, daemon, client):
    store = DsosStreamStore(daemon, TAG, client)
    daemon.publish_now(TAG, "{oops", fmt="string")
    daemon.publish_now(TAG, '["not","an","object"]')
    assert store.parse_errors == 2
    assert store.objects_stored == 0


def test_store_multiple_segments_multiple_objects(env, daemon, client):
    store = DsosStreamStore(daemon, TAG, client)
    msg = _message()
    msg["seg"] = [dict(msg["seg"][0]), dict(msg["seg"][0])]
    msg["seg"][1]["timestamp"] = msg["seg"][0]["timestamp"] + 1
    daemon.publish_now(TAG, msg)
    assert store.objects_stored == 2
    assert client.count("darshan_data") == 2
