"""WAL checksums and torn-tail recovery: truncate, don't trust.

Covers both write-ahead logs in :mod:`repro.dsos.journal` — the store
plugin's dedup :class:`IngestJournal` and the per-``dsosd``
:class:`StoreWal` — plus the shared recovery discipline: every record
carries a CRC-32; a torn write or corrupt record invalidates itself
*and everything after it*, and recovery replays only the longest clean
prefix, reporting the bytes it refused.
"""

import pytest

from repro.dsos.journal import (
    IngestJournal,
    StoreWal,
    WalEntry,
    WalRecord,
    recover_entries,
)


# --------------------------------------------------------- WalEntry


def test_wal_entry_roundtrip():
    entry = WalEntry.make(1.25, "7:3:12")
    assert entry.valid
    decoded = WalEntry.decode(entry.encode().rstrip(b"\n"))
    assert decoded == entry


def test_wal_entry_checksum_mismatch_rejected():
    entry = WalEntry.make(1.25, "7:3:12")
    line = entry.encode().rstrip(b"\n")
    # Flip one payload byte: the stored checksum no longer matches.
    corrupt = line.replace(b"7:3:12", b"7:3:13")
    assert WalEntry.decode(corrupt) is None
    assert WalEntry(1.25, "7:3:12", checksum=0).valid is False


def test_wal_entry_malformed_lines_rejected():
    assert WalEntry.decode(b"garbage") is None
    assert WalEntry.decode(b"not-a-float|tid|00000000") is None
    assert WalEntry.decode(b"1.0|tid|zzzz") is None


# --------------------------------------------------------- WalRecord


def test_wal_record_roundtrip_preserves_object():
    obj = {"job_id": 9, "rank": 2, "timestamp": 3.5, "op": "write"}
    record = WalRecord.make(41, "events", obj, trace_id="9:2:41")
    decoded = WalRecord.decode(record.encode().rstrip(b"\n"))
    assert decoded == record
    assert decoded.obj == obj


def test_wal_record_payload_may_contain_separator():
    # ``|`` inside a string value must not break the framing: decode
    # splits from both ends so only the payload absorbs separators.
    obj = {"job_id": 1, "rank": 0, "timestamp": 0.5, "op": "a|b|c"}
    record = WalRecord.make(0, "events", obj)
    decoded = WalRecord.decode(record.encode().rstrip(b"\n"))
    assert decoded is not None
    assert decoded.obj == obj


def test_wal_record_corruption_rejected():
    record = WalRecord.make(3, "events", {"x": 1}, trace_id="t")
    line = record.encode().rstrip(b"\n")
    assert WalRecord.decode(line.replace(b'"x":1', b'"x":2')) is None
    assert WalRecord.decode(b"only|three|fields") is None


# --------------------------------------------------- recover_entries


def _log(n, torn_tail_bytes=0):
    wal = StoreWal()
    for seq in range(n):
        wal.append(seq, "events", {"seq": seq}, trace_id=f"t{seq}")
    if torn_tail_bytes:
        wal.tear_tail(torn_tail_bytes)
    return wal


def test_clean_log_recovers_every_record():
    wal = _log(5)
    recovery = wal.recover()
    assert [r.seq for r in recovery.entries] == [0, 1, 2, 3, 4]
    assert recovery.truncated_bytes == 0
    assert not recovery.truncated


def test_mid_entry_torn_write_truncates_last_record():
    # The crash landed mid-append: a few bytes of the final record
    # (including its trailing newline) never hit disk.
    wal = _log(4, torn_tail_bytes=7)
    recovery = wal.recover()
    assert [r.seq for r in recovery.entries] == [0, 1, 2]
    assert recovery.truncated
    assert recovery.truncated_bytes > 0


def test_tear_inside_checksum_field_still_detected():
    wal = _log(3)
    # Tear exactly one byte: the newline survives on no record, so the
    # last line loses only its terminator? No — chop 2 bytes so the
    # line keeps no newline and cannot terminate.
    wal.tear_tail(2)
    recovery = wal.recover()
    assert [r.seq for r in recovery.entries] == [0, 1]


def test_corrupt_middle_record_truncates_everything_after():
    wal = _log(5)
    data = bytearray(bytes(wal._buf))
    # Flip a byte inside the third record's payload: records 3..4 still
    # decode individually, but must never be trusted past the tear.
    lines = bytes(data).split(b"\n")
    lines[2] = lines[2].replace(b'"seq":2', b'"seq":9')
    corrupted = b"\n".join(lines)
    recovery = recover_entries(corrupted, WalRecord.decode)
    assert [r.seq for r in recovery.entries] == [0, 1]
    assert recovery.truncated_bytes == len(corrupted) - sum(
        len(line) + 1 for line in lines[:2]
    )


def test_recover_physically_truncates_refused_tail():
    wal = _log(3, torn_tail_bytes=5)
    first = wal.recover()
    assert first.truncated
    # Appends after recovery never interleave with untrusted bytes: a
    # second recovery replays the salvaged prefix plus the new record.
    wal.append(99, "events", {"seq": 99}, trace_id="t99")
    second = wal.recover()
    assert [r.seq for r in second.entries] == [0, 1, 99]
    assert second.truncated_bytes == 0


def test_store_wal_counters():
    wal = _log(4, torn_tail_bytes=3)
    assert wal.records_appended == 4
    assert wal.torn_writes == 1
    assert len(wal) == 4
    with pytest.raises(ValueError):
        wal.tear_tail(0)


# ----------------------------------------------------- IngestJournal


class _Env:
    def __init__(self):
        self.now = 0.0


def test_ingest_journal_wal_roundtrip():
    env = _Env()
    journal = IngestJournal(env)
    for i in range(4):
        env.now = 0.1 * i
        assert journal.admit(f"1:0:{i}")
    assert not journal.admit("1:0:2")  # duplicate
    assert journal.duplicates_skipped == 1

    replica = IngestJournal(_Env())
    recovery = replica.replay(journal.to_bytes())
    assert not recovery.truncated
    assert len(replica) == 4
    assert "1:0:3" in replica
    assert not replica.admit("1:0:3")  # dedup index survived the replay


def test_ingest_journal_replay_truncates_torn_tail():
    env = _Env()
    journal = IngestJournal(env)
    for i in range(3):
        journal.admit(f"5:1:{i}")
    data = journal.to_bytes()[:-4]  # torn mid-final-record

    replica = IngestJournal(_Env())
    recovery = replica.replay(data)
    assert recovery.truncated
    assert [e.trace_id for e in recovery.entries] == ["5:1:0", "5:1:1"]
    # The torn-off admission is unknown to the replica: it re-admits.
    assert replica.admit("5:1:2")
