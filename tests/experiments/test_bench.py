"""Pipeline-benchmark report shape and per-run freshness.

An earlier revision of ``repro.experiments.bench`` duplicated the
simulated outcome into every lane's section of the report.  Because
each lane runs a fresh world in the same process, the duplicated
numbers *looked* like a counters-not-reset bug (three lanes, three
identical "results") — and would have silently hidden a real one.  The
report now keeps host metrics per lane and the simulated outcome in
one shared section, asserted identical across lanes on every run;
these tests pin both the layout and the freshness.
"""

from repro.experiments.bench import _SIM_KEYS, LANES, _run_lane, pipeline_benchmark


def test_run_lane_is_fresh_per_run():
    """The same lane twice in one process → identical numbers.

    Any host-side state carried over between runs (module caches aside,
    which are pure) would show up as diverging simulated stats or a
    diverging engine-event count.
    """
    first_host, first_sim = _run_lane(lane="columnar", n_families=40, seed=11)
    second_host, second_sim = _run_lane(lane="columnar", n_families=40, seed=11)
    assert first_sim == second_sim
    assert first_host["engine_events"] == second_host["engine_events"]
    assert first_host["spine"] == second_host["spine"]


def test_report_separates_host_from_simulated():
    result = pipeline_benchmark(quick=True, seed=42)
    # One shared simulated section...
    assert set(_SIM_KEYS) <= set(result["simulated"])
    for lane in LANES:
        section = result[lane]
        # ...and none of its keys duplicated into the per-lane host
        # sections (the old snapshot bug).
        assert not set(_SIM_KEYS) & set(section)
        assert section["lane"] == lane
        assert section["wall_s"] > 0
        assert section["engine_events"] > 0
        assert section["peak_rss_kib"] > 0
    # Only the columnar lane carries spine batch counters.
    assert "spine" not in result["slow"] and "spine" not in result["fast"]
    spine = result["columnar"]["spine"]
    assert spine["rows"] == result["simulated"]["messages_published"]
    for key in (
        "speedup_events_per_sec",
        "speedup_columnar_vs_fast",
        "speedup_columnar_vs_slow",
    ):
        assert result[key] > 0
    # Quick runs never claim a full-campaign baseline comparison.
    assert result["speedup_vs_seed_baseline"] is None
    assert result["speedup_vs_fast_baseline"] is None
