"""Consistency between the three temporal data paths.

Darshan exposes the same I/O through three mechanisms with different
trade-offs: DXT (post-mortem, full fidelity, job-relative times), the
HEATMAP module (post-mortem, constant memory), and the connector
(run-time, absolute times).  They observe the *same events*, so their
stories must agree — byte for byte and timestamp for timestamp.
"""

import numpy as np
import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job


@pytest.fixture(scope="module")
def run():
    world = World(WorldConfig(seed=21, quiet=True, n_compute_nodes=4))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=5, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "lustre", connector_config=ConnectorConfig())
    rows = [
        r for r in world.query_job(result.job_id).rows if r["module"] == "POSIX"
    ]
    return world, result, rows


def test_dxt_and_connector_see_identical_events(run):
    _, result, rows = run
    log = result.darshan_log
    dxt_events = []
    for (module, rank, _rid), segments in log.dxt_segments.items():
        if module != "POSIX":
            continue
        for seg in segments:
            dxt_events.append((rank, seg.op, seg.offset, seg.length))
    db_events = [
        (r["rank"], r["op"], r["seg_off"], r["seg_len"])
        for r in rows
        if r["op"] in ("read", "write")
    ]
    assert sorted(dxt_events) == sorted(db_events)


def test_connector_timestamps_are_dxt_plus_job_start(run):
    _, result, rows = run
    log = result.darshan_log
    # Build lookup: (rank, op, offset) -> absolute end from the DB.
    db = {
        (r["rank"], r["op"], r["seg_off"]): r["timestamp"]
        for r in rows
        if r["op"] in ("read", "write")
    }
    for (module, rank, _rid), segments in log.dxt_segments.items():
        if module != "POSIX":
            continue
        for seg in segments:
            absolute = db[(rank, seg.op, seg.offset)]
            assert absolute == pytest.approx(log.start_time + seg.end, abs=1e-6)


def test_heatmap_totals_match_connector_totals(run):
    _, result, rows = run
    hm = result.darshan_log.heatmap
    for op in ("read", "write"):
        connector_bytes = sum(r["seg_len"] for r in rows if r["op"] == op)
        assert hm.matrix(op).sum() == pytest.approx(connector_bytes, rel=1e-9)


def test_counter_totals_match_event_stream(run):
    _, result, rows = run
    summary = result.darshan_log.summary()["POSIX"]
    assert summary["POSIX_BYTES_WRITTEN"] == sum(
        r["seg_len"] for r in rows if r["op"] == "write"
    )
    assert summary["POSIX_WRITES"] == sum(1 for r in rows if r["op"] == "write")
    assert summary["POSIX_OPENS"] == sum(1 for r in rows if r["op"] == "open")


def test_durations_consistent_between_paths(run):
    _, result, rows = run
    log = result.darshan_log
    total_db_write_dur = sum(r["seg_dur"] for r in rows if r["op"] == "write")
    counter_write_time = log.summary()["POSIX"]["POSIX_F_WRITE_TIME"]
    assert counter_write_time == pytest.approx(total_db_write_dur, rel=1e-9)
