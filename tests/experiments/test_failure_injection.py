"""Failure injection: the monitoring path may die; the application may not.

The Streams design is best-effort end to end (Section IV-B), so a
crashed aggregator must cost the application nothing — the data is
simply gone for the failure window.
"""

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job


def _app(iterations=4):
    return MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=iterations, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )


def test_dead_l1_aggregator_loses_data_not_runtime():
    # Baseline: healthy pipeline.
    healthy = World(WorldConfig(seed=3, quiet=True, n_compute_nodes=4))
    r_healthy = run_job(healthy, _app(), "nfs", connector_config=ConnectorConfig())
    assert healthy.dsos.count("darshan_data") == r_healthy.messages_published

    # Same campaign, but the head-node aggregator is down.
    broken = World(WorldConfig(seed=3, quiet=True, n_compute_nodes=4))
    broken.fabric.l1.fail()
    r_broken = run_job(broken, _app(), "nfs", connector_config=ConnectorConfig())

    # The application is completely unaffected...
    assert r_broken.runtime_s == pytest.approx(r_healthy.runtime_s, rel=1e-6)
    assert r_broken.messages_published == r_healthy.messages_published
    # ...but nothing reached the database.
    assert broken.dsos.count("darshan_data") == 0
    assert broken.fabric.l1.dropped_while_failed == r_broken.messages_published


def test_mid_run_crash_loses_only_the_tail():
    world = World(WorldConfig(seed=3, quiet=True, n_compute_nodes=4))

    # Crash the L1 aggregator after it has seen 50 messages.
    seen = {"n": 0}

    def trip_wire(message):
        seen["n"] += 1
        if seen["n"] == 50:
            world.fabric.l1.fail()

    from repro.experiments.world import STREAM_TAG

    world.fabric.l1.streams.subscribe(STREAM_TAG, trip_wire)

    result = run_job(world, _app(iterations=8), "nfs", connector_config=ConnectorConfig())
    stored = world.dsos.count("darshan_data")
    assert 0 < stored < result.messages_published
    rows = world.query_job(result.job_id).rows
    assert len(rows) == stored


def test_recovered_daemon_resumes_delivery():
    world = World(WorldConfig(seed=3, quiet=True, n_compute_nodes=4))
    world.fabric.l1.fail()
    r1 = run_job(world, _app(), "nfs", connector_config=ConnectorConfig())
    assert world.dsos.count("darshan_data") == 0
    world.fabric.l1.recover()
    r2 = run_job(world, _app(), "nfs", connector_config=ConnectorConfig())
    assert world.dsos.count("darshan_data") == r2.messages_published
    # Only the second job's events exist.
    assert len(world.query_job(r1.job_id).rows) == 0
    assert len(world.query_job(r2.job_id).rows) == r2.messages_published


def test_dead_compute_daemon_is_local_loss_only():
    world = World(WorldConfig(seed=3, quiet=True, n_compute_nodes=4))
    result_nodes = world.cluster.scheduler._free[:2]  # nodes the job will get
    world.fabric.daemon_for(result_nodes[0].name).fail()
    result = run_job(world, _app(), "nfs", connector_config=ConnectorConfig())
    rows = world.query_job(result.job_id).rows
    producers = {r["ProducerName"] for r in rows}
    # The dead node's events are gone; the healthy node's arrived.
    assert result_nodes[0].name not in producers
    assert result_nodes[1].name in producers
