"""Cross-job interference: jobs sharing only the file system slow each
other — the origin of the variability the paper wants to diagnose."""

import pytest

from repro.apps import MpiIoTest, Phase, SyntheticWorkload
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job, run_jobs_concurrently


def _victim():
    return MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )


def _bully():
    # A heavy writer hammering the same file system from other nodes.
    return SyntheticWorkload(
        [Phase(kind="write", amount=40, op_bytes=4 * 2**20, file_mode="per_rank")],
        n_nodes=2,
        ranks_per_node=4,
    )


def test_concurrent_jobs_complete_and_record():
    world = World(WorldConfig(seed=10, quiet=True, n_compute_nodes=8))
    results = run_jobs_concurrently(
        world,
        [(_victim(), "nfs"), (_victim(), "lustre")],
        connector_config=ConnectorConfig(),
    )
    assert len(results) == 2
    assert results[0].job_id != results[1].job_id
    for r in results:
        assert r.runtime_s > 0
        assert len(world.query_job(r.job_id).rows) == r.messages_published
    # Node allocations were disjoint.
    nodes0 = {n.name for n in results[0].job.nodes}
    nodes1 = {n.name for n in results[1].job.nodes}
    assert nodes0.isdisjoint(nodes1)


def test_shared_filesystem_interference_slows_victim():
    # Victim alone on NFS.
    alone = World(WorldConfig(seed=10, quiet=True, n_compute_nodes=8))
    t_alone = run_job(alone, _victim(), "nfs").runtime_s

    # Victim with a bully on the same NFS, different nodes.
    contended = World(WorldConfig(seed=10, quiet=True, n_compute_nodes=8))
    results = run_jobs_concurrently(
        contended, [(_victim(), "nfs"), (_bully(), "nfs")]
    )
    t_contended = results[0].runtime_s
    assert t_contended > t_alone * 1.5


def test_other_filesystem_bully_is_harmless():
    alone = World(WorldConfig(seed=10, quiet=True, n_compute_nodes=8))
    t_alone = run_job(alone, _victim(), "nfs").runtime_s

    contended = World(WorldConfig(seed=10, quiet=True, n_compute_nodes=8))
    results = run_jobs_concurrently(
        contended, [(_victim(), "nfs"), (_bully(), "lustre")]
    )
    t_contended = results[0].runtime_s
    # A Lustre bully cannot hurt an NFS victim.
    assert t_contended < t_alone * 1.1


def test_interference_visible_in_database():
    """The run-time data shows the victim's ops got slower — the
    diagnosis workflow of the paper, applied to contention."""
    world = World(WorldConfig(seed=10, quiet=True, n_compute_nodes=8))
    alone_result = run_job(
        world, _victim(), "nfs", connector_config=ConnectorConfig()
    )
    contended = run_jobs_concurrently(
        world,
        [(_victim(), "nfs"), (_bully(), "nfs")],
        connector_config=ConnectorConfig(),
    )
    victim_contended = contended[0]

    def mean_write_dur(job_id):
        rows = [
            r for r in world.query_job(job_id).rows
            if r["module"] == "POSIX" and r["op"] == "write"
        ]
        return sum(r["seg_dur"] for r in rows) / len(rows)

    assert mean_write_dur(victim_contended.job_id) > 2 * mean_write_dur(
        alone_result.job_id
    )
