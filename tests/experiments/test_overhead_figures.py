"""Shape tests for the Table II and Figure 5-9 reproductions (small scale)."""

import pytest

from repro.apps import Hmmer, MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import run_overhead_cell
from repro.experiments.figures import (
    fig5_op_counts,
    fig6_per_node,
    fig7_duration_variability,
    fig8_timeline,
    fig9_grafana_series,
)

pytestmark = pytest.mark.filterwarnings("ignore::RuntimeWarning")


# --------------------------------------------------------------- overhead


def test_overhead_cell_reports_both_campaigns():
    cell = run_overhead_cell(
        lambda: MpiIoTest(
            n_nodes=2, ranks_per_node=2, iterations=2, block_size=2**20,
            collective=False, sync_per_iteration=False,
        ),
        "nfs",
        label="smoke",
        seed=3,
        reps=2,
    )
    assert len(cell.darshan_runtimes) == 2
    assert len(cell.connector_runtimes) == 2
    assert cell.avg_messages > 0
    assert cell.message_rate > 0
    row = cell.as_row()
    assert row["config"] == "smoke"
    assert row["filesystem"] == "nfs"


def test_overhead_cell_validation():
    with pytest.raises(ValueError):
        run_overhead_cell(lambda: None, "nfs", label="x", reps=0)


def test_hmmer_overhead_dwarfs_mpiio_overhead():
    """The paper's central contrast: event rate drives overhead."""
    hmmer_cell = run_overhead_cell(
        lambda: Hmmer(ranks_per_node=8, n_families=40),
        "lustre",
        label="hmmer",
        seed=4,
        reps=1,
        world_kwargs={"quiet": True},
    )
    mpiio_cell = run_overhead_cell(
        lambda: MpiIoTest(
            n_nodes=2, ranks_per_node=2, iterations=3, block_size=2**20,
            collective=False, sync_per_iteration=False,
        ),
        "lustre",
        label="mpiio",
        seed=4,
        reps=1,
        world_kwargs={"quiet": True},
    )
    assert hmmer_cell.overhead_percent > 100.0
    assert abs(mpiio_cell.overhead_percent) < 30.0
    assert hmmer_cell.message_rate > mpiio_cell.message_rate


def test_sprintf_free_mode_has_tiny_overhead():
    """The paper's 0.37 % ablation (format_mode='none')."""
    cell = run_overhead_cell(
        lambda: Hmmer(ranks_per_node=8, n_families=40),
        "lustre",
        label="hmmer-nofmt",
        seed=4,
        reps=1,
        connector_config=ConnectorConfig(format_mode="none"),
        world_kwargs={"quiet": True},
    )
    assert abs(cell.overhead_percent) < 5.0


# ---------------------------------------------------------------- figures


@pytest.fixture(scope="module")
def small_campaign_kwargs():
    return dict(reps=3, n_nodes=2, ranks_per_node=2, iterations=5, block_size=2**20)


def test_fig5_counts_and_cis():
    out = fig5_op_counts(reps=2, n_nodes=2, ranks_per_node=2,
                         particles_per_rank=(50_000,))
    assert set(out) == {"nfs/50k", "lustre/50k"}
    for counts in out.values():
        assert set(counts) == {"open", "close", "read", "write"}
        # Every rank opens and closes exactly once per job.
        assert counts["open"]["mean"] == 4.0
        assert counts["write"]["mean"] >= 9 * 4  # >= one op per variable


def test_fig6_per_node_structure():
    out = fig6_per_node(n_jobs=2, n_nodes=2, ranks_per_node=2,
                        particles_per_rank=50_000)
    assert len(out) == 2
    for nodes in out.values():
        assert len(nodes) == 2
        for ops in nodes.values():
            assert ops["open"] == 2  # two ranks per node
            assert ops["close"] == 2


def test_fig7_detects_single_anomalous_job(small_campaign_kwargs):
    out = fig7_duration_variability(**small_campaign_kwargs)
    assert len(out["job_ids"]) == 3
    assert set(out["stats"]) == set(out["job_ids"])
    for per_op in out["stats"].values():
        assert "read" in per_op and "write" in per_op


def test_fig7_paper_scale_anomaly():
    """With the documented seed, exactly one of five jobs is anomalous."""
    out = fig7_duration_variability()
    assert len(out["anomalous"]) == 1
    job = out["anomalous"][0]
    stats = out["stats"]
    others = [s["read"]["mean"] for j, s in stats.items() if j != job]
    assert stats[job]["read"]["mean"] > 5 * max(others)


def test_fig8_write_phases_then_reads():
    tl = fig8_timeline()
    assert tl["write_phases"] == 10  # the paper's ten phases
    writes = tl["t"][tl["op"] == "write"]
    reads = tl["t"][tl["op"] == "read"]
    assert reads.min() > writes.max() * 0.95  # reads at the end


def test_fig9_series_structure():
    s = fig9_grafana_series(bucket_s=10.0)
    assert s["write"]["bytes"].sum() > 0
    assert s["read"]["bytes"].sum() > 0
    assert len(s["edges"]) == len(s["write"]["count"]) + 1
    # Total volumes match: every block written is read back.
    assert s["write"]["bytes"].sum() == pytest.approx(s["read"]["bytes"].sum())
