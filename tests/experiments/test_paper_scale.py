"""The analytic paper-scale bridge: do the calibrated constants explain
the published full-scale numbers?"""

import pytest

from repro.experiments.paper_scale import (
    PAPER_TABLE2A,
    PAPER_TABLE2C,
    fit_ranks_per_node,
    predict_hmmer,
    predict_mpiio,
)


def test_fitted_ranks_per_node_is_plausible():
    rpn, err = fit_ranks_per_node()
    # The paper's nodes have 32 cores / 64 threads; any rpn in 8..32 is
    # a realistic launch configuration.
    assert 8 <= rpn <= 32
    assert err < 0.40  # mean relative error across the four cells


def test_nfs_cells_predicted_closely():
    rpn, _ = fit_ranks_per_node()
    for coll in (True, False):
        paper = PAPER_TABLE2A[("nfs", coll)]
        pred = predict_mpiio(fs="nfs", collective=coll, ranks_per_node=rpn)
        assert pred == pytest.approx(paper, rel=0.20)


def test_lustre_cells_within_small_factor():
    rpn, _ = fit_ranks_per_node()
    for coll in (True, False):
        paper = PAPER_TABLE2A[("lustre", coll)]
        pred = predict_mpiio(fs="lustre", collective=coll, ranks_per_node=rpn)
        assert paper / 3 < pred < paper * 3


def test_predicted_crossover_matches_paper():
    rpn, _ = fit_ranks_per_node()
    nfs_coll = predict_mpiio(fs="nfs", collective=True, ranks_per_node=rpn)
    nfs_indep = predict_mpiio(fs="nfs", collective=False, ranks_per_node=rpn)
    lfs_coll = predict_mpiio(fs="lustre", collective=True, ranks_per_node=rpn)
    lfs_indep = predict_mpiio(fs="lustre", collective=False, ranks_per_node=rpn)
    assert nfs_coll > nfs_indep
    assert lfs_coll < lfs_indep


def test_hmmer_overhead_regime_at_full_scale():
    for fs, (paper_base, paper_dc, paper_msgs) in PAPER_TABLE2C.items():
        p = predict_hmmer(fs=fs)
        paper_overhead = (paper_dc - paper_base) / paper_base * 100
        # Same order of magnitude, same >> 100% regime.
        assert p["overhead_percent"] > 100
        assert paper_overhead / 3 < p["overhead_percent"] < paper_overhead * 3
        # Message count within ~10% of the paper's NFS figure.
        assert p["messages"] == pytest.approx(3_117_342, rel=0.15)


def test_hmmer_lustre_overhead_exceeds_nfs():
    nfs = predict_hmmer(fs="nfs")["overhead_percent"]
    lustre = predict_hmmer(fs="lustre")["overhead_percent"]
    assert lustre > nfs * 2


def test_unknown_fs_rejected():
    with pytest.raises(ValueError):
        predict_mpiio(fs="gpfs", collective=True)
    with pytest.raises(ValueError):
        predict_hmmer(fs="gpfs")
