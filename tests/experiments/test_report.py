"""Tests for the markdown report generator."""

import json

import pytest

from repro.experiments.report import generate_report, load_results


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "table2a_mpiio.json").write_text(
        json.dumps(
            [
                {
                    "config": "mpi-io-test/collective",
                    "filesystem": "nfs",
                    "avg_messages": 7392,
                    "rate_msgs_per_s": 23.7,
                    "darshan_runtime_s": 278.94,
                    "dC_runtime_s": 311.55,
                    "overhead_percent": 11.69,
                }
            ]
        )
    )
    (tmp_path / "ablation_sampling.json").write_text(
        json.dumps(
            [
                {"sample_every": 1, "overhead_percent": 760.7, "fidelity": 1.0},
                {"sample_every": 100, "overhead_percent": 8.0, "fidelity": 0.01},
            ]
        )
    )
    (tmp_path / "fig7_job_variability.json").write_text(
        json.dumps(
            {
                "anomalous": [259903],
                "means": {
                    "259900": {"read": 1.35, "write": 0.9},
                    "259903": {"read": 8.51, "write": 4.09},
                },
            }
        )
    )
    (tmp_path / "fig8_timeline.json").write_text(
        json.dumps(
            {
                "job_id": 259903,
                "write_phases": 10,
                "decile_mean_durations": [4.0, 9.7],
            }
        )
    )
    return tmp_path


def test_load_results(results_dir):
    results = load_results(results_dir)
    assert set(results) == {
        "table2a_mpiio",
        "ablation_sampling",
        "fig7_job_variability",
        "fig8_timeline",
    }


def test_load_results_missing_dir(tmp_path):
    with pytest.raises(FileNotFoundError, match="pytest benchmarks"):
        load_results(tmp_path / "ghost")


def test_report_includes_paper_columns(results_dir):
    report = generate_report(results_dir)
    assert "Table IIa" in report
    assert "+11.69 %" in report  # measured
    assert "-1.55 %" in report  # paper's value for NFS collective
    assert "| 1 | 760.7 % | 100% |" in report
    assert "**10 write phases**" in report
    assert "| 259903 | 8.510 | 4.090 | yes |" in report


def test_report_against_real_results():
    """The repository's own saved bench results render cleanly."""
    from pathlib import Path

    results = Path(__file__).resolve().parents[2] / "benchmarks" / "results"
    if not results.is_dir():
        pytest.skip("benchmarks have not been run")
    report = generate_report(results)
    assert "# Reproduction report" in report
    assert "Table IIc" in report
