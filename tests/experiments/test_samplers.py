"""Tests for the telemetry path: samplers -> metric store -> correlation."""

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.figures import FIGURE_LOAD_KWARGS
from repro.webservices import correlate_durations_with_metric, rows_to_dataframe


@pytest.fixture
def world():
    return World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))


def _app():
    return MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=3, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )


def test_samplers_store_metric_sets(world):
    world.start_samplers(interval_s=1.0)
    run_job(world, _app(), "nfs")
    world.stop_samplers()
    rows = world.query_metrics("load_factor").rows
    assert rows, "no telemetry stored"
    sources = {r["source"] for r in rows}
    assert sources == {"fsload_nfs", "fsload_lustre"}
    stamps = [r["timestamp"] for r in rows]
    assert stamps == sorted(stamps)  # metric_time index orders by time
    # Quiet world: load factor pinned at 1.0.
    assert all(abs(r["value"] - 1.0) < 1e-9 for r in rows)


def test_samplers_cannot_double_start(world):
    world.start_samplers()
    with pytest.raises(RuntimeError):
        world.start_samplers()
    world.stop_samplers()
    world.start_samplers()  # restart after stop is fine
    world.stop_samplers()


def test_drain_bounded_with_samplers(world):
    world.start_samplers(interval_s=0.5)
    before = world.env.now
    world.drain()
    assert world.env.now <= before + 2.5
    world.stop_samplers()


def test_correlation_finds_the_loaded_filesystem():
    """End-to-end: NFS load explains NFS I/O durations; Lustre's does not."""
    world = World(WorldConfig(seed=4, load_kwargs=dict(FIGURE_LOAD_KWARGS)))
    world.start_samplers(interval_s=5.0)
    job_ids = []
    for _ in range(4):
        r = run_job(
            world,
            MpiIoTest(n_nodes=2, ranks_per_node=2, iterations=8,
                      block_size=2 * 2**20, collective=False),
            "nfs",
            connector_config=ConnectorConfig(),
        )
        job_ids.append(r.job_id)
    world.stop_samplers()

    rows = []
    for j in job_ids:
        rows.extend(x for x in world.query_job(j).rows if x["module"] == "POSIX")
    io_df = rows_to_dataframe(rows)
    metric_rows = world.query_metrics("load_factor").rows

    nfs = correlate_durations_with_metric(
        io_df, [r for r in metric_rows if r["source"] == "fsload_nfs"],
        bucket_s=20.0,
    )
    assert nfs["pearson_r"] > 0.5
    assert nfs["p_value"] < 0.05
