"""Tests for campaign worlds and the job runner."""

import pytest

from repro.core import ConnectorConfig
from repro.apps import MpiIoTest
from repro.darshan import DarshanConfig
from repro.experiments import World, WorldConfig, run_job


def _small_app(**kw):
    defaults = dict(
        n_nodes=2, ranks_per_node=2, iterations=2, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    defaults.update(kw)
    return MpiIoTest(**defaults)


def test_world_has_both_filesystems():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    assert world.filesystem("nfs").name == "nfs"
    assert world.filesystem("lustre").name == "lustre"


def test_world_epoch_offset():
    base = WorldConfig(seed=1)
    later = WorldConfig(seed=1, campaign_offset_days=12)
    assert later.epoch - base.epoch == pytest.approx(12 * 86400)


def test_same_seed_same_offset_reproduces_runtime():
    times = []
    for _ in range(2):
        world = World(WorldConfig(seed=9, n_compute_nodes=4))
        r = run_job(world, _small_app(), "nfs")
        times.append(r.runtime_s)
    assert times[0] == times[1]


def test_campaign_offset_changes_weather():
    times = []
    for offset in (0.0, 12.0):
        world = World(WorldConfig(seed=9, n_compute_nodes=4, campaign_offset_days=offset))
        r = run_job(world, _small_app(), "nfs")
        times.append(r.runtime_s)
    assert times[0] != times[1]


def test_run_job_without_connector_stores_nothing():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    result = run_job(world, _small_app(), "nfs")
    assert result.connector is None
    assert result.messages_published == 0
    assert world.dsos.count("darshan_data") == 0
    assert result.darshan_log.summary()["MPIIO"]["MPIIO_INDEP_WRITES"] == 8


def test_run_job_with_connector_lands_in_dsos():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    result = run_job(world, _small_app(), "nfs", connector_config=ConnectorConfig())
    assert result.messages_published > 0
    assert world.dsos.count("darshan_data") == result.messages_published
    rows = world.query_job(result.job_id).rows
    assert len(rows) == result.messages_published
    assert {r["job_id"] for r in rows} == {result.job_id}


def test_run_job_sequential_jobs_get_distinct_ids():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    r1 = run_job(world, _small_app(), "nfs", connector_config=ConnectorConfig())
    r2 = run_job(world, _small_app(), "lustre", connector_config=ConnectorConfig())
    assert r2.job_id == r1.job_id + 1
    assert world.query_job(r1.job_id).rows
    assert world.query_job(r2.job_id).rows


def test_run_job_releases_nodes():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    before = world.cluster.scheduler.free_nodes
    run_job(world, _small_app(), "nfs")
    assert world.cluster.scheduler.free_nodes == before


def test_run_job_message_rate():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    r = run_job(world, _small_app(), "nfs", connector_config=ConnectorConfig())
    assert r.message_rate == pytest.approx(r.messages_published / r.runtime_s)


def test_run_job_respects_darshan_config():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    r = run_job(
        world,
        _small_app(),
        "nfs",
        darshan_config=DarshanConfig(enable_dxt=False),
    )
    assert r.darshan_log.dxt_record_count() == 0


def test_csv_store_optional():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4, keep_csv=True))
    run_job(world, _small_app(), "nfs", connector_config=ConnectorConfig())
    assert world.csv_store is not None
    assert len(world.csv_store) > 0
    assert world.csv_store.header_line().startswith("#module,")


def test_absolute_timestamps_in_database():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    r = run_job(world, _small_app(), "nfs", connector_config=ConnectorConfig())
    rows = world.query_job(r.job_id).rows
    from repro.experiments.world import EPOCH_BASE

    assert all(row["timestamp"] >= EPOCH_BASE for row in rows)
