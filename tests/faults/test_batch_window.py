"""Batch-window regression tests (the fast lane under fire).

The fast lane coalesces forwarder batches and opens a bus batch window
around their delivery.  Two things must survive a crash landing inside
that window:

* every message behind the trip wire is *attributed* (receive-stage
  ``drop_daemon_failed``), never silently vanished;
* the window itself always closes and flushes — no rows parked in the
  store's batch buffer, no dangling ``in_batch`` state at end of run.
"""

from repro.apps import MpiIoTest
from repro.cluster import Cluster, ClusterSpec
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG
from repro.ldms import Ldmsd
from repro.sim import Environment, RngRegistry
from repro.telemetry import (
    DROP_DAEMON_FAILED,
    install,
    make_trace_id,
)

TAG = "darshanConnector"


# ---------------------------------------------------------------- unit


def test_mid_window_crash_attributes_every_message():
    """A 5-message batch whose receiver dies at message 2: the two
    delivered messages stay delivered, the three behind the trip wire
    drop with receive-stage attribution — exactly as sequential
    delivery would have behaved."""
    env = Environment()
    cluster = Cluster(env, RngRegistry(4), ClusterSpec(n_compute_nodes=3))
    collector = install(env)
    src = Ldmsd(env, cluster.compute_nodes[0], cluster.network, name="src")
    dst = Ldmsd(env, cluster.head_node, cluster.network, name="dst")
    src.add_stream_forward(TAG, dst, queue_depth=64)

    delivered = []
    def trip_wire(message):
        delivered.append(message.trace_id)
        if len(delivered) == 2:
            dst.fail()
    dst.streams.subscribe(TAG, trip_wire)

    # Burst in zero simulated time: the drain callback runs behind the
    # burst, so all 5 coalesce into one forwarder batch.
    ids = [make_trace_id(1, 0, seq) for seq in range(5)]
    for tid in ids:
        collector.begin(tid, 1, 0, src.node.name)
        src.publish_now(TAG, {"k": 1}, trace_id=tid)
    env.run()

    assert delivered == ids[:2]  # the window really was cut short
    assert not dst.streams.in_batch  # and it closed anyway
    for tid in ids[:2]:
        assert collector.traces[tid].drop_site is None
    for tid in ids[2:]:
        assert collector.traces[tid].drop_site == (
            "receive", dst.node.name, DROP_DAEMON_FAILED
        )
    assert dst.dropped_while_failed == 3


# ------------------------------------------------------------ campaign


def test_l1_crash_inside_a_batch_window_stays_exact():
    """Satellite coverage: L1 dies *inside* a fast-lane batch window
    mid-campaign.  All losses are attributed and the ledger closes."""
    world = World(WorldConfig(
        seed=11, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=True,
    ))
    l1 = world.fabric.l1
    state = {"in_window": 0, "tripped": False}

    def trip_wire(message):
        if state["tripped"]:
            return
        if l1.streams.in_batch:
            state["in_window"] += 1
            if state["in_window"] == 2:  # strictly mid-window
                state["tripped"] = True
                l1.fail()

    l1.streams.subscribe(STREAM_TAG, trip_wire)

    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs", connector_config=ConnectorConfig())

    # The scenario is real: a batch window existed and was cut short.
    assert state["tripped"]

    health = result.health
    assert health.verify()  # nothing silently vanished
    assert health.dropped > 0
    drop_outcomes = {
        (stage, outcome)
        for (stage, _, outcome) in health.drop_sites()
    }
    assert ("receive", DROP_DAEMON_FAILED) in drop_outcomes

    # End-of-run flush: nothing parked in any batch buffer.
    assert world.store._pending_rows == []
    assert world.store.slow_pending == 0
    assert not world.fabric.l2.streams.in_batch
    assert not world.fabric.l1.streams.in_batch


def test_healthy_campaign_leaves_no_batch_residue():
    """Regression pin for the end-of-run flush audit: after a clean
    fast-lane campaign every batched row has been flushed to DSOS."""
    world = World(WorldConfig(
        seed=11, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=True,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs", connector_config=ConnectorConfig())

    assert world.store._pending_rows == []
    assert world.store.slow_pending == 0
    assert not world.fabric.l2.streams.in_batch
    health = result.health
    assert health.verify()
    assert health.dropped == 0
    assert health.stored == health.published
    # Every published event is a queryable DSOS row.
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    assert len(rows) == health.published
