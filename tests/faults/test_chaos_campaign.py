"""The acceptance campaign: every fault class at once, exact books.

One seeded run arms the full self-healing stack — spill/replay
connector, retry/backoff forwarders, hot-standby L1, journaled ingest —
against an L1 crash-and-restart, a link partition and a slow-store
episode, all landing inside the job's I/O burst.  The run must
reconcile exactly, store each event at most once, and replay
bit-for-bit under its seed.
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
from repro.ldms.resilience import RetryPolicy


def _plan():
    return FaultPlan((
        DaemonCrash("l1", after_messages=50, down_for=0.5),
        LinkPartition("nid00001", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))


def _campaign(seed: int, fast: bool = True):
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, faults=_plan(), retry=RetryPolicy(),
        standby_l1=True,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    # No inter-job gap, so the timed fault windows overlap the traffic.
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(spill=True, fast_lane=fast),
        inter_job_gap_s=0.0,
    )
    return world, result


def test_acceptance_campaign_reconciles_exactly():
    world, result = _campaign(seed=7)

    # All three faults fired — and healed.
    kinds = [f.kind for f in world.fault_injector.applied]
    assert kinds.count("daemon_crash") == 1
    assert kinds.count("daemon_recover") == 1
    assert kinds.count("link_partition") == 1
    assert kinds.count("link_heal") == 1
    assert kinds.count("slow_store_begin") == 1
    assert kinds.count("slow_store_end") == 1

    health = result.health
    assert health.published > 0
    assert health.verify()  # published == stored + Σ drops + spill
    assert health.in_flight == 0
    assert health.in_flight_spill == 0  # everything replayed or stored

    # Zero duplicate rows under replay/retry: the WAL admitted each
    # trace id at most once and the row count matches the ledger.
    journal = world.store.journal
    wal_ids = [entry.trace_id for entry in journal.wal]
    assert len(wal_ids) == len(set(wal_ids))
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    assert len(rows) == health.stored

    # End-of-run flush: no residue in any batch or slow-store buffer.
    assert world.store._pending_rows == []
    assert world.store.slow_pending == 0
    assert not world.fabric.l2.streams.in_batch
    assert result.connector.spill_pending() == 0


def test_same_seed_campaign_is_bit_identical():
    """Replayability: the same seeded campaign twice gives the same
    fault log, the same ledger, and the same final DSOS rows."""
    world_a, result_a = _campaign(seed=42)
    world_b, result_b = _campaign(seed=42)

    epoch_a, epoch_b = world_a.config.epoch, world_b.config.epoch
    log_a = [(f.t - epoch_a, f.kind, f.detail)
             for f in world_a.fault_injector.applied]
    log_b = [(f.t - epoch_b, f.kind, f.detail)
             for f in world_b.fault_injector.applied]
    assert log_a == log_b

    ha, hb = result_a.health, result_b.health
    assert (ha.published, ha.stored, ha.dropped, ha.in_flight_spill) == (
        hb.published, hb.stored, hb.dropped, hb.in_flight_spill
    )
    assert ha.drop_sites() == hb.drop_sites()
    assert ha.recovery_sites() == hb.recovery_sites()

    rows_a = [dict(obj) for obj in world_a.query_job(result_a.job_id)]
    rows_b = [dict(obj) for obj in world_b.query_job(result_b.job_id)]
    assert rows_a == rows_b
    assert len(rows_a) > 0


def test_different_seeds_still_reconcile():
    for seed in (3, 11):
        world, result = _campaign(seed=seed)
        assert result.health.verify(), f"seed {seed} failed to reconcile"
