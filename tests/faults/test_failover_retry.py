"""Forwarder resilience: retry with capped backoff, failover to a
standby aggregator, dead-letter accounting, and journaled dedup of
retry-induced duplicates."""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.faults import DaemonCrash, FaultPlan, FlakyTransport
from repro.ldms.resilience import RetryPolicy, jitter_factor
from repro.telemetry.trace import (
    DROP_DEAD_LETTER,
    DUP_IGNORED,
    FAILOVER,
    REDELIVERED,
)


def _app(iterations=8):
    return MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=iterations, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )


#: Wide enough that its minimum cumulative delay (~1.37 s) outlasts any
#: 0.5 s outage in these scenarios — no spurious dead letters.
_PATIENT = RetryPolicy(max_attempts=8, base_s=0.05, cap_s=0.5)


def _world(plan, *, retry=None, standby=False, seed=3):
    return World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        faults=plan, retry=retry, standby_l1=standby,
    ))


def _forward_totals(world):
    totals = {"retries": 0, "redelivered": 0, "failovers": 0,
              "dead_letters": 0}
    for daemon in world.fabric.all_daemons():
        for stats in daemon.forward_stats():
            for key in totals:
                totals[key] += getattr(stats, key)
    return totals


# ------------------------------------------------------- policy mechanics


def test_retry_delay_is_deterministic_and_bounded():
    policy = RetryPolicy(max_attempts=5, base_s=0.01, cap_s=0.04)
    for attempt in range(1, 6):
        raw = min(0.01 * 2 ** (attempt - 1), 0.04)
        d1 = policy.delay(attempt, key=123)
        d2 = policy.delay(attempt, key=123)
        assert d1 == d2  # pure function of (attempt, key)
        assert raw * 0.5 <= d1 < raw  # jittered but bounded


def test_jitter_decorrelates_keys():
    # Different senders must not thundering-herd on the same instants.
    factors = {jitter_factor(key, 1) for key in range(64)}
    assert len(factors) > 8
    assert all(0.5 <= f < 1.0 for f in factors)


# --------------------------------------------------------- dead lettering


def test_permanent_l1_crash_dead_letters_with_default_policy():
    # Default policy gives up after ~15 ms; L1 never returns, there is
    # no standby, so exhausted batches become dead letters — counted,
    # attributed, and part of an exact ledger (not silent loss).
    plan = FaultPlan((DaemonCrash("l1", after_messages=30),))
    world = _world(plan, retry=RetryPolicy())
    result = run_job(world, _app(), "nfs",
                     connector_config=ConnectorConfig())

    totals = _forward_totals(world)
    assert totals["retries"] > 0
    assert totals["dead_letters"] > 0
    assert totals["failovers"] == 0  # nothing to fail over to

    health = result.health
    assert health.verify()
    drop_outcomes = {outcome for (_, _, outcome) in health.drop_sites()}
    assert DROP_DEAD_LETTER in drop_outcomes


# ------------------------------------------------------------ redelivery


def test_retry_redelivers_across_a_bounded_outage():
    plan = FaultPlan((DaemonCrash("l1", after_messages=30, down_for=0.5),))
    world = _world(plan, retry=_PATIENT)
    result = run_job(world, _app(), "nfs",
                     connector_config=ConnectorConfig())

    totals = _forward_totals(world)
    assert totals["retries"] > 0
    assert totals["redelivered"] > 0
    assert totals["dead_letters"] == 0  # the policy outlasted the outage

    health = result.health
    assert health.verify()
    outcomes = {outcome for (_, _, outcome) in health.recovery_sites()}
    assert REDELIVERED in outcomes
    # Redelivered events made it all the way to the database.
    assert health.stored > 0
    assert world.store.journal.duplicates_skipped == 0


# --------------------------------------------------------------- failover


def test_failover_reroutes_to_standby_when_l1_dies_for_good():
    plan = FaultPlan((DaemonCrash("l1", after_messages=30),))
    world = _world(plan, retry=_PATIENT, standby=True)
    result = run_job(world, _app(), "nfs",
                     connector_config=ConnectorConfig())

    totals = _forward_totals(world)
    assert totals["failovers"] > 0
    assert totals["dead_letters"] == 0

    # Failover is lazy (a forwarder switches on its first failed send),
    # so exactly the daemons that hit the dead L1 now point at the
    # standby — and at least the job's nodes did.
    standby = world.fabric.l1_standby
    target = f"{standby.node.name}/{standby.name}"
    switched = 0
    for daemon in world.fabric.compute_daemons.values():
        for fwd in daemon.stats_snapshot()["forwards"]:
            if fwd["failovers"] > 0:
                assert fwd["active_peer"] == target
                switched += 1
    assert switched > 0

    # The standby actually relayed traffic to L2.
    relayed = sum(s.forwarded for s in world.fabric.l1_standby.forward_stats())
    assert relayed > 0

    health = result.health
    assert health.verify()
    outcomes = {outcome for (_, _, outcome) in health.recovery_sites()}
    assert FAILOVER in outcomes
    # Data kept flowing after the crash: far more stored than lost.
    assert health.stored > health.dropped


# -------------------------------------------------------- flaky transport


def test_flaky_lost_transport_without_retry_dead_letters():
    # Loss with no retry policy: the forwarder has no recourse, so the
    # batch is dead-lettered on the spot (best-effort, but accounted).
    plan = FaultPlan((
        FlakyTransport("l1", at=0.0, duration=10.0, error_rate=1.0,
                       mode="lost"),
    ))
    world = _world(plan, seed=7)
    result = run_job(world, _app(iterations=4), "nfs",
                     connector_config=ConnectorConfig(), inter_job_gap_s=0.0)

    totals = _forward_totals(world)
    assert totals["dead_letters"] > 0
    health = result.health
    assert health.verify()
    # Nothing crossed the flaky l1 -> l2 hop while the fault was up.
    assert health.stored == 0


def test_flaky_unacked_duplicates_are_journaled_away():
    # Lost *acks*: every batch is delivered, the sender retries anyway,
    # and the ingest journal is what keeps the database exactly-once.
    plan = FaultPlan((
        FlakyTransport("nid00001", at=0.0, duration=10.0, error_rate=1.0,
                       mode="unacked"),
    ))
    world = _world(plan, retry=RetryPolicy(max_attempts=2), seed=7)
    result = run_job(world, _app(iterations=4), "nfs",
                     connector_config=ConnectorConfig(), inter_job_gap_s=0.0)

    journal = world.store.journal
    assert journal.duplicates_skipped > 0

    # Exactly-once storage: row count equals distinct stored traces and
    # no trace id appears twice in the WAL.
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    health = result.health
    assert len(rows) == health.stored
    wal_ids = [entry.trace_id for entry in journal.wal]
    assert len(wal_ids) == len(set(wal_ids))

    assert health.verify()
    outcomes = {outcome for (_, _, outcome) in health.recovery_sites()}
    assert DUP_IGNORED in outcomes
