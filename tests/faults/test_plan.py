"""FaultPlan validation: bad plans die at construction, not mid-run."""

import pytest

from repro.faults import (
    DaemonCrash,
    FaultPlan,
    FlakyTransport,
    LinkDegrade,
    LinkPartition,
    SlowStore,
)


def test_daemon_crash_needs_exactly_one_trigger():
    with pytest.raises(ValueError):
        DaemonCrash("l1")
    with pytest.raises(ValueError):
        DaemonCrash("l1", at=1.0, after_messages=5)
    DaemonCrash("l1", at=0.0)
    DaemonCrash("l1", after_messages=1)


def test_daemon_crash_down_for_must_be_positive():
    with pytest.raises(ValueError):
        DaemonCrash("l1", at=1.0, down_for=0.0)
    DaemonCrash("l1", at=1.0, down_for=0.5)
    DaemonCrash("l1", at=1.0, down_for=None)  # permanent crash is fine


@pytest.mark.parametrize("make", [
    lambda d: LinkPartition("a", "b", at=0.0, duration=d),
    lambda d: LinkDegrade("a", "b", at=0.0, duration=d, factor=2.0),
    lambda d: SlowStore(at=0.0, duration=d),
    lambda d: FlakyTransport("l1", at=0.0, duration=d),
])
def test_waitable_outages_must_be_finite(make):
    """Everything a process can block on requires a positive duration."""
    with pytest.raises(ValueError):
        make(0.0)
    with pytest.raises(ValueError):
        make(None)
    make(0.1)


def test_flaky_transport_validates_rate_and_mode():
    with pytest.raises(ValueError):
        FlakyTransport("l1", at=0.0, duration=1.0, error_rate=1.5)
    with pytest.raises(ValueError):
        FlakyTransport("l1", at=0.0, duration=1.0, mode="maybe")
    FlakyTransport("l1", at=0.0, duration=1.0, error_rate=1.0, mode="unacked")


def test_degrade_factor_must_be_positive():
    with pytest.raises(ValueError):
        LinkDegrade("a", "b", at=0.0, duration=1.0, factor=0.0)


def test_plan_rejects_non_faults():
    with pytest.raises(TypeError):
        FaultPlan(("crash l1 please",))


def test_plan_truthiness_and_rng_need():
    assert not FaultPlan()
    assert len(FaultPlan()) == 0
    timed = FaultPlan((SlowStore(at=0.0, duration=1.0),))
    assert timed and len(timed) == 1
    assert not timed.needs_rng  # pure clockwork, no seeded draws
    flaky = FaultPlan((FlakyTransport("l1", at=0.0, duration=1.0),))
    assert flaky.needs_rng
