"""Connector spill/replay: a dead local ldmsd costs spilled events
nothing but latency.

With ``ConnectorConfig(spill=True)`` the connector buffers events it
cannot publish (local daemon down) in an in-memory Darshan-log buffer,
reconnects with capped exponential backoff, and replays in order once
the daemon returns.  The health ledger must stay exact through all of
it: ``published == stored + Σ drops + in_flight_spill``.
"""

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.faults import DaemonCrash, FaultPlan
from repro.telemetry.trace import REPLAYED, SPILLED


def _app(iterations=8):
    return MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=iterations, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )


def _world(plan, seed=3):
    return World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True, faults=plan,
    ))


def test_spill_then_replay_loses_nothing_at_the_connector():
    # Crash the first compute-node daemon mid-job, bring it back soon.
    plan = FaultPlan((
        DaemonCrash("nid00001", after_messages=10, down_for=0.3),
    ))
    world = _world(plan)
    result = run_job(world, _app(), "nfs",
                     connector_config=ConnectorConfig(spill=True))
    stats = result.connector.stats

    # The outage really happened and the spill path really ran.
    kinds = [f.kind for f in world.fault_injector.applied]
    assert kinds.count("daemon_crash") == 1
    assert kinds.count("daemon_recover") == 1
    assert stats.events_spilled > 0
    assert stats.events_replayed == stats.events_spilled  # all came back
    assert stats.reconnect_attempts >= 1
    assert result.connector.spill_pending() == 0

    # Spilled events still count as published, and the ledger closes.
    health = result.health
    assert health.published == stats.messages_published
    assert health.in_flight_spill == 0
    assert health.verify()

    # Recovery-site attribution names the replay at the publish stage.
    outcomes = {outcome for (_, _, outcome) in health.recovery_sites()}
    assert REPLAYED in outcomes


def test_permanent_crash_leaves_spill_in_flight_but_exact():
    # The daemon never comes back: reconnect budget exhausts and the
    # buffered events stay in the spill — visibly, not as silent loss.
    plan = FaultPlan((DaemonCrash("nid00001", after_messages=10),))
    world = _world(plan)
    config = ConnectorConfig(
        spill=True, reconnect_max_attempts=3, reconnect_base_s=0.01,
        reconnect_cap_s=0.05,
    )
    result = run_job(world, _app(), "nfs", connector_config=config)
    stats = result.connector.stats

    assert stats.events_spilled > 0
    assert stats.events_replayed == 0
    pending = result.connector.spill_pending()
    assert pending == stats.events_spilled

    health = result.health
    assert health.in_flight_spill == pending
    # The extended invariant absorbs the spill: still EXACT.
    assert health.verify()
    assert health.published == (
        health.stored + health.dropped + health.in_flight_spill
    )
    # Spilled-but-never-replayed traces carry the spill marker.
    outcomes = {outcome for (_, _, outcome) in health.recovery_sites()}
    assert REPLAYED not in outcomes
    assert SPILLED not in outcomes  # spill alone is not a recovery


def test_spill_replay_stores_each_event_exactly_once():
    """Replayed events land in the database exactly once — the ingest
    journal confirms replay introduced no duplicate trace ids."""
    plan = FaultPlan((
        DaemonCrash("nid00001", after_messages=10, down_for=0.3),
    ))
    world = _world(plan)
    result = run_job(world, _app(), "nfs",
                     connector_config=ConnectorConfig(spill=True))

    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    assert len(rows) == result.health.stored
    assert world.store.journal is not None
    assert world.store.journal.duplicates_skipped == 0
    # Every event that survived the outage is in the database.
    assert result.health.stored + result.health.dropped == (
        result.health.published
    )


def test_without_spill_a_dead_daemon_still_drops():
    """spill=False keeps the paper's best-effort behaviour unchanged."""
    plan = FaultPlan((
        DaemonCrash("nid00001", after_messages=10, down_for=0.3),
    ))
    world = _world(plan)
    result = run_job(world, _app(), "nfs",
                     connector_config=ConnectorConfig(spill=False))
    stats = result.connector.stats
    assert stats.events_spilled == 0
    assert stats.events_replayed == 0
    health = result.health
    assert health.dropped > 0  # the outage cost data, as designed
    assert health.verify()  # but every loss is attributed
