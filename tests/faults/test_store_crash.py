"""StoreCrash fault injection: crash a dsosd replica under live ingest.

The campaign-level pins: under quorum replication, a replica crash
(with or without restart, with or without a torn WAL tail) leaves zero
unaccounted events — the extended ledger
``published == stored + Σ drops + in_flight_spill`` closes exactly,
recovery hops (``wal_replayed`` / ``repair_pulled`` /
``quorum_degraded``) land in the telemetry recovery ledger, and after
repair the replica census is complete again.
"""

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.faults import FaultPlan, StoreCrash
from repro.ldms.resilience import RetryPolicy


def _campaign(plan, *, seed=42, repair=True, fast=True, columnar=False):
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, columnar=columnar, faults=plan,
        retry=RetryPolicy(), standby_l1=True,
        dsos_shards=2, dsos_replication=2, dsos_write_quorum=2,
        dsos_repair=repair,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(
            spill=True, fast_lane=fast, columnar=columnar),
        inter_job_gap_s=0.0,
    )
    return world, result


_DRILL = FaultPlan((
    StoreCrash(0, at=0.15, down_for=0.3, tear_tail=True),
    StoreCrash(3, at=0.25, down_for=0.25),
))


# ------------------------------------------------------------- plan


def test_store_crash_plan_validation():
    with pytest.raises(ValueError, match="daemon"):
        StoreCrash(-1, at=0.1)
    with pytest.raises(ValueError, match="at"):
        StoreCrash(0, at=-0.1)
    with pytest.raises(ValueError, match="down_for"):
        StoreCrash(0, at=0.1, down_for=0.0)


def test_store_crash_requires_replicated_cluster():
    with pytest.raises(ValueError, match="not replicated"):
        World(WorldConfig(
            seed=1, quiet=True, telemetry=True,
            faults=FaultPlan((StoreCrash(0, at=0.1),)),
        ))


def test_store_crash_daemon_index_bounds_checked():
    with pytest.raises(ValueError, match="4 daemons"):
        World(WorldConfig(
            seed=1, quiet=True, telemetry=True,
            faults=FaultPlan((StoreCrash(9, at=0.1),)),
            dsos_shards=2, dsos_replication=2,
        ))


# --------------------------------------------------------- campaigns


def test_crash_with_restart_reconciles_and_converges():
    world, result = _campaign(_DRILL)
    health = result.health
    assert health.published > 0
    assert health.verify()  # zero unaccounted events, exact ledger

    kinds = [f.kind for f in world.fault_injector.applied]
    assert kinds.count("store_crash") == 2
    assert kinds.count("store_recover") == 2
    assert kinds.count("store_repair") == 2

    recoveries = health.recovery_sites()
    outcomes = {site[2] for site in recoveries}
    assert "wal_replayed" in outcomes
    assert "repair_pulled" in outcomes
    assert "quorum_degraded" in outcomes
    # Recovery hops are qualified by the daemon that re-earned them.
    nodes = {site[1] for site in recoveries if site[2] == "wal_replayed"}
    assert any("dsosd0" in node for node in nodes)

    census = world.dsos.cluster.census()
    assert census.complete and census.replicas_down == 0
    assert world.dsos.cluster.quorum_degraded_writes > 0


def test_permanent_crash_still_reconciles():
    plan = FaultPlan((StoreCrash(0, at=0.15, tear_tail=True),))
    world, result = _campaign(plan)
    assert result.health.verify()
    census = world.dsos.cluster.census()
    assert census.replicas_down == 1
    assert census.lost == 0  # the surviving replica holds everything
    assert world.dsos.cluster.count("darshan_data") > 0
    # Down replica never recovered: no replay/repair hops, only the
    # degraded-quorum acks of writes that landed single-copy.
    outcomes = {s[2] for s in result.health.recovery_sites()}
    assert "wal_replayed" not in outcomes
    assert "quorum_degraded" in outcomes


def test_repair_disabled_leaves_torn_tail_under_replicated():
    world, result = _campaign(_DRILL, repair=False)
    assert result.health.verify()  # the ledger still closes
    census = world.dsos.cluster.census()
    assert census.replicas_down == 0  # both replicas restarted
    assert census.under_replicated > 0  # but the torn tail stayed lost
    assert not census.complete


def test_crash_drill_replays_bit_identically():
    world_a, result_a = _campaign(_DRILL, seed=7)
    world_b, result_b = _campaign(_DRILL, seed=7)
    assert [
        (f.t, f.kind, f.detail) for f in world_a.fault_injector.applied
    ] == [
        (f.t, f.kind, f.detail) for f in world_b.fault_injector.applied
    ]
    assert result_a.health.to_dict() == result_b.health.to_dict()
    assert (world_a.dsos.cluster.stats_snapshot()
            == world_b.dsos.cluster.stats_snapshot())
    assert world_a.env.now == world_b.env.now
