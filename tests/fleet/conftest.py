"""Shared fixtures: one demo-fleet scan, reused across the suite."""

import pytest


@pytest.fixture(scope="session")
def fleet_report():
    """The default three-cluster scan (fast lane), run once per session."""
    from repro.fleet import scan_fleet

    return scan_fleet()
