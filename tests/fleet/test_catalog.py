"""The signal catalog: completeness against the live registries.

The catalog's job is to make silent drift impossible: ``missing()``
re-derives the expected names from the emitting modules' own tables
every call, so adding a sampled series / rule / probe metric without a
catalog row fails ``repro fleet --catalog --check``.  That derivation —
not a hand-kept list — is what these tests pin.
"""

import pytest

from repro.diagnosis import (
    Signal,
    SignalCatalog,
    default_catalog,
    expected_signals,
)


def test_default_catalog_is_complete():
    catalog = default_catalog()
    assert catalog.complete()
    assert catalog.missing() == []
    assert len(catalog) == len(expected_signals()) == 61


def test_catalog_covers_every_registry():
    names = set(default_catalog().names())
    # One spot check per source registry.
    assert "stored_total" in names           # SAMPLED_SERIES
    assert "alert_daemon_down" in names      # default_rules
    assert "hop_latency_end_to_end" in names  # hop histograms
    assert "probe_latency_s" in names        # PROBE_METRICS
    assert "health_score" in names           # scorecard
    assert "score_deduction_probes" in names  # COMPONENT_WEIGHTS
    assert "store_wal_replayed_total" in names  # STORE_METRICS
    assert "alert_under_replication" in names  # replication rules
    assert "flightrec_captured_total" in names  # RECORDER_METRICS


def test_kind_census():
    by_kind = {}
    for signal in default_catalog():
        by_kind[signal.kind] = by_kind.get(signal.kind, 0) + 1
    assert by_kind == {"counter": 20, "gauge": 17, "histogram": 6,
                       "alert": 12, "score": 6}


def test_series_rows_link_to_the_rules_they_feed():
    catalog = default_catalog()
    assert catalog.get("daemons_failed").rule == "daemon_down"
    assert catalog.get("slow_pending").rule == "store_stall"
    assert catalog.get("hop_latency_end_to_end").rule == "latency_slo"
    assert catalog.get("probe_latency_s").rule == ""  # dashboards only


def test_missing_detects_an_uncatalogued_series(monkeypatch):
    from repro.diagnosis import engine

    catalog = default_catalog()  # built from today's registries
    monkeypatch.setattr(
        engine, "SAMPLED_SERIES",
        engine.SAMPLED_SERIES + (("brand_new_series", "widgets", "new"),),
    )
    # The registry grew; the already-built catalog must notice.
    assert catalog.missing() == ["brand_new_series"]
    assert not catalog.complete()
    assert catalog.to_dict()["missing"] == ["brand_new_series"]


def test_register_duplicate_raises():
    catalog = SignalCatalog()
    signal = Signal(name="x", unit="u", kind="gauge", source="s",
                    description="d")
    catalog.register(signal)
    with pytest.raises(ValueError, match="already catalogued"):
        catalog.register(signal)


def test_signal_validation():
    with pytest.raises(ValueError, match="unknown signal kind"):
        Signal(name="x", unit="u", kind="vibes", source="s",
               description="d")
    with pytest.raises(ValueError, match="non-empty"):
        Signal(name="", unit="u", kind="gauge", source="s",
               description="d")


def test_iteration_and_lookup():
    catalog = default_catalog()
    names = [s.name for s in catalog]
    assert names == sorted(names) == catalog.names()
    assert "health_score" in catalog
    assert "nonsense" not in catalog
    assert catalog.get("nonsense") is None


def test_to_rows_sorted_by_kind_then_name():
    rows = default_catalog().to_rows()
    assert len(rows) == 61
    keys = [(r["kind"], r["name"]) for r in rows]
    assert keys == sorted(keys)
    # Un-ruled signals render a dash, not an empty cell.
    by_name = {r["name"]: r for r in rows}
    assert by_name["probe_stragglers"]["rule"] == "-"
    assert by_name["daemons_failed"]["rule"] == "daemon_down"
