"""OpenMetrics exposition format pins (fast, fixture-built report).

A hand-built one-cluster report exercises every family type the
exporter emits — scorecard gauges, probe samples with node labels,
zero-filled alert counters, sampled-series gauges, histogram
count/sum pairs — and pins the text format scrapers will parse:
sorted families, HELP/TYPE once per family, escaped labels, ``# EOF``.
"""

from dataclasses import dataclass

from repro.fleet import (
    ComponentDeduction,
    HealthScore,
    NodeProbeStats,
    ProbeReport,
)
from repro.telemetry import render_openmetrics


@dataclass
class _Alert:
    rule: str
    severity: str


@dataclass
class _Hist:
    count: int
    total: float


class _Collector:
    def __init__(self, histograms):
        self.histograms = histograms


class _Health:
    def __init__(self, histograms):
        self.collector = _Collector(histograms)


@dataclass
class _Cluster:
    name: str
    score: HealthScore
    probe_report: ProbeReport
    incidents: list
    gauges: dict
    health: _Health


def _cluster(name="c1"):
    deductions = tuple(
        ComponentDeduction(comp, weight, raw, min(raw, weight), "")
        for comp, weight, raw in (
            ("probes", 30, 10), ("alerts", 25, 10), ("ledger", 25, 0),
            ("backlog", 10, 0), ("store", 10, 0),
        )
    )
    score = HealthScore(cluster=name, score=80, deductions=deductions)
    probe = ProbeReport(
        nodes=[
            NodeProbeStats(node="node01", probes=4, lost=1,
                           mean_latency_s=0.00125, worst_latency_s=0.002,
                           reasons=("L2 aggregator down",)),
            NodeProbeStats(node="node02", probes=4, lost=0,
                           mean_latency_s=0.001, worst_latency_s=0.001,
                           reasons=()),
        ],
        stragglers=[], median_latency_s=0.001, fold=2.0, sweeps=4,
    )
    return _Cluster(
        name=name, score=score, probe_report=probe,
        incidents=[_Alert("daemon_down", "critical")],
        gauges={"stored_total": 64, "ingest_backlog": 0},
        health=_Health({"end_to_end": _Hist(count=64, total=0.32)}),
    )


def test_exposition_structure_and_terminator():
    text = render_openmetrics([_cluster()])
    lines = text.splitlines()
    assert lines[-1] == "# EOF"
    assert text.endswith("# EOF\n")
    # Families arrive in sorted name order.
    families = [
        line.split()[2] for line in lines if line.startswith("# TYPE")
    ]
    assert families == sorted(families)
    # HELP/TYPE exactly once per family.
    assert len(families) == len(set(families))


def test_help_and_type_come_from_the_catalog():
    text = render_openmetrics([_cluster()])
    assert "# TYPE repro_health_score gauge" in text
    assert "# HELP repro_health_score per-cluster readiness score" in text
    assert "# TYPE repro_probe_lost_total counter" in text
    assert "# TYPE repro_stored_total counter" in text
    assert "(uncatalogued)" not in text


def test_integer_values_render_without_decimal_point():
    text = render_openmetrics([_cluster()])
    assert 'repro_health_score{cluster="c1"} 80' in text
    assert 'repro_score_deduction_probes{cluster="c1"} 10' in text
    assert 'repro_stored_total{cluster="c1"} 64' in text


def test_probe_samples_carry_sorted_node_labels():
    text = render_openmetrics([_cluster()])
    assert ('repro_probe_latency_s{cluster="c1",node="node01"} 0.00125'
            in text)
    assert 'repro_probe_lost_total{cluster="c1",node="node01"} 1' in text
    assert 'repro_probe_lost_total{cluster="c1",node="node02"} 0' in text
    assert 'repro_probe_stragglers{cluster="c1"} 0' in text


def test_alert_families_are_zero_filled():
    """Scrapers see the whole alert surface even when nothing fired."""
    text = render_openmetrics([_cluster()])
    assert 'repro_alert_daemon_down{cluster="c1"} 1' in text
    # A rule with no incidents is still exported, at zero.
    assert 'repro_alert_latency_slo{cluster="c1"} 0' in text
    assert 'repro_alert_store_stall{cluster="c1"} 0' in text


def test_histograms_expose_count_and_sum_under_one_family():
    text = render_openmetrics([_cluster()])
    assert "# TYPE repro_hop_latency_end_to_end histogram" in text
    assert 'repro_hop_latency_end_to_end_count{cluster="c1"} 64' in text
    assert 'repro_hop_latency_end_to_end_sum{cluster="c1"} 0.32' in text
    # The _count/_sum samples must not grow their own HELP/TYPE headers.
    assert "# TYPE repro_hop_latency_end_to_end_count" not in text
    assert "# TYPE repro_hop_latency_end_to_end_sum" not in text


def test_unknown_family_falls_back_to_uncatalogued_gauge():
    cluster = _cluster()
    cluster.gauges["mystery_gauge"] = 7
    text = render_openmetrics([cluster])
    assert "# HELP repro_mystery_gauge (uncatalogued)" in text
    assert "# TYPE repro_mystery_gauge gauge" in text
    assert 'repro_mystery_gauge{cluster="c1"} 7' in text


def test_label_values_are_escaped():
    text = render_openmetrics([_cluster(name='we"ird\\cluster')])
    assert 'cluster="we\\"ird\\\\cluster"' in text


def test_multi_cluster_samples_group_within_family():
    text = render_openmetrics([_cluster("alpha"), _cluster("beta")])
    lines = text.splitlines()
    scores = [l for l in lines if l.startswith("repro_health_score{")]
    assert scores == [
        'repro_health_score{cluster="alpha"} 80',
        'repro_health_score{cluster="beta"} 80',
    ]
    # One header pair serves both clusters' samples.
    assert text.count("# TYPE repro_health_score gauge") == 1


def test_render_is_deterministic():
    assert render_openmetrics([_cluster()]) == render_openmetrics(
        [_cluster()]
    )
