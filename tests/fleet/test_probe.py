"""Probe scanner: config validation, ghost traversal, straggler math.

The scanner's `_probe` is a *ghost traversal*: it reads the spine's own
cost model (daemon liveness, link state, congestion, outbox depths,
store episodes) without enqueueing events or advancing the clock —
every loss path and cost term is exercised here by mutating world state
directly and sweeping.
"""

import pytest

from repro.experiments import World, WorldConfig
from repro.fleet import (
    PROBE_METRICS,
    NodeProbeStats,
    ProbeConfig,
    ProbeReport,
    ProbeSample,
    flag_stragglers,
)


def _world(**kw):
    defaults = dict(
        seed=5, quiet=True, n_compute_nodes=4, telemetry=True,
        probe=ProbeConfig(period_s=0.05),
    )
    defaults.update(kw)
    return World(WorldConfig(**defaults))


# ----------------------------------------------------------- ProbeConfig


@pytest.mark.parametrize("bad", [
    {"period_s": 0.0},
    {"period_s": -1.0},
    {"payload_bytes": 0},
    {"straggler_fold": 1.0},
    {"min_nodes": 1},
    {"store_stall_penalty_s": -0.1},
])
def test_probe_config_rejects_bad_values(bad):
    with pytest.raises(ValueError):
        ProbeConfig(**bad)


def test_probe_metrics_table_shape():
    names = [name for name, _, _ in PROBE_METRICS]
    assert names == ["probe_latency_s", "probe_lost_total",
                     "probe_stragglers"]
    for _, unit, description in PROBE_METRICS:
        assert unit and description


# ------------------------------------------------------- flag_stragglers


def test_flag_stragglers_needs_min_nodes():
    assert flag_stragglers({"a": 1.0, "b": 9.0}, min_nodes=3) == []


def test_flag_stragglers_needs_positive_median():
    assert flag_stragglers({"a": 0.0, "b": 0.0, "c": 0.0}) == []


def test_flag_stragglers_is_strict_fold():
    # Exactly fold x median is NOT a straggler; strictly above is.
    means = {"a": 1.0, "b": 1.0, "c": 2.0}
    assert flag_stragglers(means, fold=2.0) == []
    means["c"] = 2.0 + 1e-9
    assert flag_stragglers(means, fold=2.0) == ["c"]


def test_flag_stragglers_sorted_output():
    means = {"z": 10.0, "a": 10.0, "m": 1.0, "n": 1.0, "b": 1.0}
    assert flag_stragglers(means, fold=2.0) == ["a", "z"]


# -------------------------------------------------------- ghost traversal


def test_sweep_probes_every_node_sorted_and_clean():
    world = _world()
    scanner = world.probe_scanner
    t0 = world.env.now
    samples = scanner.sweep()
    assert [s.node for s in samples] == sorted(world.fabric.compute_daemons)
    assert len(samples) == 4
    for s in samples:
        assert not s.lost and s.reason == ""
        assert s.latency_s > 0
        assert s.latency_s == pytest.approx(
            s.publish_s + s.link_s + s.queue_s + s.store_s
        )
        assert s.store_s == 0.0
    # Read-only: the sweep advanced nothing and scheduled nothing strong
    # (the armed scanner's own ticks are weak, so run() drains at once).
    assert world.env.now == t0
    world.env.run()
    assert world.env.now == t0


def test_probe_lost_when_sampler_daemon_down():
    world = _world()
    victim = sorted(world.fabric.compute_daemons)[1]
    world.fabric.compute_daemons[victim].fail()
    samples = {s.node: s for s in world.probe_scanner.sweep()}
    assert samples[victim].lost
    assert samples[victim].latency_s == 0.0
    assert f"sampler ldmsd on {victim} down" == samples[victim].reason
    others = [s for n, s in samples.items() if n != victim]
    assert others and all(not s.lost for s in others)


def test_probe_lost_when_l1_down_without_standby():
    world = _world()
    world.fabric.l1.fail()
    samples = world.probe_scanner.sweep()
    assert all(s.lost for s in samples)
    assert {s.reason for s in samples} == {"L1 aggregator down, no standby"}


def test_probe_survives_l1_crash_via_standby():
    world = _world(standby_l1=True)
    world.fabric.l1.fail()
    samples = world.probe_scanner.sweep()
    assert all(not s.lost for s in samples)


def test_probe_lost_when_l2_down():
    world = _world()
    world.fabric.l2.fail()
    samples = world.probe_scanner.sweep()
    assert all(s.lost for s in samples)
    assert {s.reason for s in samples} == {"L2 aggregator down"}


def test_probe_lost_on_partitioned_link():
    world = _world()
    node = sorted(world.fabric.compute_daemons)[0]
    l1_node = world.fabric.l1.node.name
    world.cluster.network.links_on_path(node, l1_node)[0].set_up(False)
    samples = {s.node: s for s in world.probe_scanner.sweep()}
    assert samples[node].lost
    assert "partitioned" in samples[node].reason


def test_probe_charges_store_stall_penalty():
    world = _world()
    baseline = {s.node: s.latency_s for s in world.probe_scanner.sweep()}
    world.store.begin_slow_episode()
    stalled = world.probe_scanner.sweep()
    penalty = world.probe_scanner.config.store_stall_penalty_s
    for s in stalled:
        assert s.store_s == penalty
        assert s.latency_s == pytest.approx(baseline[s.node] + penalty)
    world.store.end_slow_episode()
    clean = world.probe_scanner.sweep()
    assert all(s.store_s == 0.0 for s in clean)


def test_arming_twice_raises():
    world = _world()  # World.__init__ already armed the scanner
    with pytest.raises(RuntimeError):
        world.probe_scanner.arm()


def test_no_scanner_without_probe_config():
    world = _world(probe=None)
    assert world.probe_scanner is None


# ------------------------------------------------------------ ProbeReport


def _sample(node, latency, lost=False, reason=""):
    return ProbeSample(t=0.0, node=node, lost=lost,
                       latency_s=0.0 if lost else latency, reason=reason)


def test_report_aggregates_per_node():
    samples = [
        _sample("a", 1.0), _sample("a", 3.0),
        _sample("b", 1.0), _sample("b", lost=True, latency=0.0,
                                   reason="L2 aggregator down"),
        _sample("c", 0.5), _sample("c", 1.5),
    ]
    report = ProbeReport.from_samples(samples, fold=2.0, min_nodes=3,
                                      sweeps=2)
    by_node = {n.node: n for n in report.nodes}
    assert list(by_node) == ["a", "b", "c"]  # sorted
    assert by_node["a"].mean_latency_s == pytest.approx(2.0)
    assert by_node["a"].worst_latency_s == 3.0
    assert by_node["b"].lost == 1 and by_node["b"].probes == 2
    assert by_node["b"].loss_ratio == 0.5
    assert by_node["b"].reasons == ("L2 aggregator down",)
    assert report.lost_nodes == ["b"]
    assert report.sweeps == 2
    # median over delivered-node means: median(2.0, 1.0, 1.0) = 1.0
    assert report.median_latency_s == pytest.approx(1.0)


def test_report_flags_straggler_and_rows_verdicts():
    samples = []
    for _ in range(3):
        samples += [_sample("a", 1.0), _sample("b", 1.0),
                    _sample("c", 5.0)]
    samples.append(_sample("d", lost=True, latency=0.0, reason="x down"))
    report = ProbeReport.from_samples(samples, fold=2.0, min_nodes=3,
                                      sweeps=3)
    assert report.stragglers == ["c"]
    verdicts = {r["node"]: r["verdict"] for r in report.to_rows()}
    assert verdicts == {"a": "ok", "b": "ok", "c": "STRAGGLER",
                        "d": "LOST"}
    payload = report.to_dict()
    assert payload["stragglers"] == ["c"]
    flags = {n["node"]: n["straggler"] for n in payload["nodes"]}
    assert flags == {"a": False, "b": False, "c": True, "d": False}


def test_report_empty_samples():
    report = ProbeReport.from_samples([], fold=2.0, min_nodes=3, sweeps=0)
    assert report.nodes == [] and report.stragglers == []
    assert report.median_latency_s == 0.0
    assert report.lost_nodes == []
    assert report.to_rows() == []


def test_node_stats_loss_ratio_no_probes():
    stats = NodeProbeStats(node="a", probes=0, lost=0, mean_latency_s=0.0,
                           worst_latency_s=0.0, reasons=())
    assert stats.loss_ratio == 0.0
