"""Fleet scans end to end: the demo fleet, determinism, chaos deductions.

Runs the real three-cluster scan once (session fixture) and pins the
shape the console, the exporter and ``repro fleet --check`` rely on:
clean clusters at 100, the chaos cluster below the ready line with its
injected faults showing up in the *matching* scorecard components, and
a byte-stable ``to_dict`` payload.
"""

import json

import pytest

from repro.diagnosis.engine import SAMPLED_SERIES
from repro.fleet import FleetClusterSpec, default_fleet, scan_cluster


def _by_name(report):
    return {c.name: c for c in report}


def test_default_fleet_is_two_clean_one_chaos():
    specs = default_fleet()
    assert [s.name for s in specs] == ["voltrino", "chama", "attaway"]
    assert [s.faults is None for s in specs] == [True, True, False]


def test_scan_shape(fleet_report):
    assert len(fleet_report) == 3
    assert fleet_report.fast_lane is True
    clusters = _by_name(fleet_report)
    assert set(clusters) == {"voltrino", "chama", "attaway"}
    # Every compute node was probed, repeatedly.
    assert len(clusters["voltrino"].probe_report.nodes) == 4
    assert len(clusters["chama"].probe_report.nodes) == 6
    for c in fleet_report:
        assert c.probe_report.sweeps > 0
        assert c.runtime_s > 0


def test_every_scorecard_reconciles_exactly(fleet_report):
    assert fleet_report.all_reconcile
    for c in fleet_report:
        assert c.score.reconciles()
        total = sum(d.deduction for d in c.score.deductions)
        assert total == 100 - c.score.score  # the invariant, spelled out


def test_clean_clusters_score_100(fleet_report):
    clusters = _by_name(fleet_report)
    for name in ("voltrino", "chama"):
        score = clusters[name].score
        assert score.score == 100 and score.grade == "A" and score.ready
        assert all(d.deduction == 0 for d in score.deductions)
        assert clusters[name].probe_report.lost_nodes == []
        assert clusters[name].probe_report.stragglers == []


def test_chaos_cluster_fails_via_matching_components(fleet_report):
    attaway = _by_name(fleet_report)["attaway"]
    score = attaway.score
    assert not score.ready and score.score < 75
    # The injected L1 crash loses probes and fires alerts; the missing
    # messages land in the ledger; the slow store bills its component.
    assert score.component("probes").deduction > 0
    assert attaway.probe_report.lost_nodes  # probes genuinely lost
    assert score.component("alerts").deduction > 0
    assert score.component("ledger").deduction > 0
    assert attaway.health.dropped > 0
    assert score.component("store").deduction > 0
    assert any(a.rule == "store_stall" for a in attaway.incidents)
    assert not fleet_report.all_ready
    assert fleet_report.worst().name == "attaway"


def test_gauges_cover_every_sampled_series(fleet_report):
    expected = {name for name, _, _ in SAMPLED_SERIES}
    for c in fleet_report:
        assert set(c.gauges) == expected


def test_scan_is_deterministic(fleet_report):
    spec = FleetClusterSpec(name="voltrino", seed=42)
    again = scan_cluster(spec)
    fixture = _by_name(fleet_report)["voltrino"]
    assert again.to_dict() == fixture.to_dict()


def test_report_to_dict_is_json_serializable(fleet_report):
    payload = fleet_report.to_dict()
    assert payload["fleet_ready"] is False
    assert payload["worst_cluster"] == "attaway"
    assert len(payload["clusters"]) == 3
    # Byte-stable under the CLI's sorted-dump contract.
    text = json.dumps(payload, indent=2, sort_keys=True)
    assert json.loads(text) == payload


def test_openmetrics_export_over_real_scan(fleet_report):
    from repro.telemetry import render_openmetrics

    text = render_openmetrics(fleet_report)
    assert text.endswith("# EOF\n")
    assert "(uncatalogued)" not in text
    assert text == render_openmetrics(fleet_report)  # deterministic
    for c in fleet_report:
        assert (f'repro_health_score{{cluster="{c.name}"}} '
                f"{c.score.score}") in text


def test_world_config_arms_all_observers():
    config = FleetClusterSpec(name="x", seed=1).world_config()
    assert config.telemetry is True
    assert config.diagnosis is not None
    assert config.probe is not None
    assert config.quiet is True
    ref = FleetClusterSpec(name="x", seed=1).world_config(fast_lane=False)
    assert ref.fast_lane is False


def test_empty_fleet_report():
    from repro.fleet import FleetReport

    report = FleetReport([], fast_lane=True)
    assert len(report) == 0
    assert report.all_ready and report.all_reconcile
    assert report.to_dict()["worst_cluster"] is None
    with pytest.raises(ValueError):
        report.worst()
