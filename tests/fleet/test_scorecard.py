"""Scorecards: the reconciliation invariant and the component math.

The load-bearing contract: Σ component deductions == 100 − score,
exactly, with every deduction an integer in [0, weight] — under clean
inputs, chaos-shaped inputs and inputs pinned at every cap.
"""

from dataclasses import dataclass

import pytest

from repro.fleet import (
    COMPONENT_WEIGHTS,
    ComponentDeduction,
    HealthScore,
    NodeProbeStats,
    ProbeReport,
    build_scorecard,
)


@dataclass
class _Alert:
    rule: str
    severity: str


class _Health:
    """Just the ledger surface build_scorecard reads."""

    def __init__(self, published=100, dropped=0, in_flight_spill=0,
                 ok=True):
        self.published = published
        self.dropped = dropped
        self.in_flight_spill = in_flight_spill
        self._ok = ok

    def verify(self):
        return self._ok


def _probe_report(lost_nodes=(), stragglers=(), sweeps=5):
    nodes = [
        NodeProbeStats(node=n, probes=sweeps, lost=sweeps,
                       mean_latency_s=0.0, worst_latency_s=0.0,
                       reasons=("down",))
        for n in lost_nodes
    ] + [
        NodeProbeStats(node=n, probes=sweeps, lost=0,
                       mean_latency_s=1.0, worst_latency_s=1.0,
                       reasons=())
        for n in stragglers
    ]
    return ProbeReport(sorted(nodes, key=lambda n: n.node),
                       sorted(stragglers), 0.1, 2.0, sweeps)


def _card(**kw):
    defaults = dict(
        probe_report=_probe_report(),
        incidents=[],
        health=_Health(),
        snapshots=[],
        slow_pending=0,
    )
    defaults.update(kw)
    return build_scorecard("test", **defaults)


# ------------------------------------------------------------- invariant


def test_weights_sum_to_100():
    assert sum(COMPONENT_WEIGHTS.values()) == 100


def test_clean_inputs_score_100():
    score = _card()
    assert score.score == 100
    assert score.reconciles()
    assert score.grade == "A" and score.ready
    assert all(d.deduction == 0 for d in score.deductions)
    assert [d.component for d in score.deductions] == list(COMPONENT_WEIGHTS)


def test_everything_maxed_scores_zero():
    score = _card(
        probe_report=_probe_report(lost_nodes=["n1", "n2", "n3"]),
        incidents=[_Alert("daemon_down", "critical")] * 5
                  + [_Alert("store_stall", "critical")] * 3,
        health=_Health(published=100, dropped=90),
        snapshots=[{"forwards": [{"queue_depth": 50}]}],
    )
    assert score.score == 0
    assert score.grade == "F" and not score.ready
    assert score.reconciles()
    for d in score.deductions:
        assert d.deduction == d.weight
        assert d.raw >= d.weight  # caps genuinely engaged


# ------------------------------------------------------------ components


def test_probes_component_lost_and_stragglers():
    score = _card(probe_report=_probe_report(lost_nodes=["n1", "n2"],
                                             stragglers=["n3"]))
    d = score.component("probes")
    assert d.raw == 10 * 2 + 5 * 1 == d.deduction == 25
    assert score.score == 75 and score.reconciles()


def test_probes_component_caps_at_weight():
    score = _card(probe_report=_probe_report(
        lost_nodes=["n1", "n2", "n3", "n4", "n5"]))
    d = score.component("probes")
    assert d.raw == 50 and d.deduction == COMPONENT_WEIGHTS["probes"] == 30
    assert score.reconciles()


def test_no_scanner_deducts_nothing():
    score = _card(probe_report=None)
    d = score.component("probes")
    assert d.deduction == 0 and "no probe scanner" in d.detail


def test_alerts_component_weighs_severity_and_skips_store_stall():
    incidents = [
        _Alert("daemon_down", "critical"),      # 10
        _Alert("queue_backlog", "warning"),     # 5
        _Alert("rank_imbalance", "info"),       # 2
        _Alert("store_stall", "critical"),      # excluded: store's bill
    ]
    score = _card(incidents=incidents)
    alerts = score.component("alerts")
    assert alerts.raw == 17 and alerts.deduction == 17
    assert "daemon_down" in alerts.detail
    assert "store_stall" not in alerts.detail
    store = score.component("store")
    assert store.raw == 5 and "1 store_stall incident" in store.detail
    assert score.score == 100 - 17 - 5 and score.reconciles()


def test_ledger_component_is_ceil_loss_percent():
    score = _card(health=_Health(published=1000, dropped=1,
                                 in_flight_spill=0))
    # 0.1% loss rounds *up* to 1 point — any loss at all costs.
    assert score.component("ledger").deduction == 1
    score = _card(health=_Health(published=100, dropped=10,
                                 in_flight_spill=5))
    assert score.component("ledger").deduction == 15


def test_ledger_that_does_not_verify_is_full_weight():
    score = _card(health=_Health(published=100, dropped=0, ok=False))
    d = score.component("ledger")
    assert d.deduction == COMPONENT_WEIGHTS["ledger"]
    assert "does not reconcile" in d.detail
    assert score.reconciles()


def test_backlog_component_sums_forward_depths():
    snapshots = [
        {"forwards": [{"queue_depth": 2}, {"queue_depth": 1}]},
        {"forwards": [{"queue_depth": 4}]},
    ]
    score = _card(snapshots=snapshots)
    d = score.component("backlog")
    assert d.raw == 7 and d.deduction == 7
    assert score.reconciles()


def test_store_component_counts_stalls_and_deferred():
    score = _card(incidents=[_Alert("store_stall", "critical")] * 2,
                  slow_pending=3)
    d = score.component("store")
    assert d.raw == 5 * 2 + 3 == 13
    assert d.deduction == COMPONENT_WEIGHTS["store"] == 10
    assert score.reconciles()


# ------------------------------------------------------------ dataclasses


def test_component_deduction_range_enforced():
    with pytest.raises(ValueError):
        ComponentDeduction(component="probes", weight=30, raw=40,
                           deduction=40, detail="over cap")
    with pytest.raises(ValueError):
        ComponentDeduction(component="probes", weight=30, raw=0,
                           deduction=-1, detail="negative")


def test_component_lookup_keyerror():
    with pytest.raises(KeyError):
        _card().component("vibes")


@pytest.mark.parametrize("score,grade,ready", [
    (100, "A", True), (90, "A", True), (89, "B", True), (75, "B", True),
    (74, "C", False), (50, "C", False), (49, "D", False), (25, "D", False),
    (24, "F", False), (0, "F", False),
])
def test_grade_thresholds(score, grade, ready):
    hs = HealthScore(cluster="x", score=score, deductions=())
    assert hs.grade == grade and hs.ready is ready


def test_reconciles_rejects_mismatched_sum():
    bad = HealthScore(cluster="x", score=90, deductions=(
        ComponentDeduction("probes", 30, 5, 5, ""),
    ))
    assert not bad.reconciles()  # 5 != 100 - 90


def test_to_dict_and_rows_shapes():
    score = _card(incidents=[_Alert("daemon_down", "critical")])
    payload = score.to_dict()
    assert payload["score"] == 90 and payload["reconciles"] is True
    assert sum(d["deduction"] for d in payload["deductions"]) == 10
    rows = score.to_rows()
    assert [r["component"] for r in rows] == list(COMPONENT_WEIGHTS)
    assert {r["deduction"] for r in rows} == {"-0", "-10"}
