"""Shared fixtures for file-system tests."""

import numpy as np
import pytest

from repro.fs import LoadProcess, LustreFileSystem, NFSFileSystem
from repro.fs.posix import IOContext, PosixClient
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def rng():
    return RngRegistry(42)


@pytest.fixture
def quiet_load(rng):
    """A load process with no diurnal swing, noise or incidents."""
    return LoadProcess(
        rng.stream("load"),
        diurnal_amplitude=0.0,
        noise_sigma=0.0,
        n_modes=0,
        incident_rate=0.0,
    )


@pytest.fixture
def nfs(env, rng, quiet_load):
    return NFSFileSystem(env, quiet_load, rng.stream("nfs"))


@pytest.fixture
def lustre(env, rng, quiet_load):
    return LustreFileSystem(env, quiet_load, rng.stream("lustre"))


@pytest.fixture
def context():
    return IOContext(
        job_id=259903,
        uid=99066,
        rank=0,
        node_name="nid00001",
        exe="/home/user/app",
        app="test-app",
    )


@pytest.fixture
def posix_nfs(env, nfs, context):
    return PosixClient(env, nfs, context)


@pytest.fixture
def posix_lustre(env, lustre, context):
    return PosixClient(env, lustre, context)


def run(env, gen):
    """Drive a generator to completion inside the DES and return its value."""
    return env.run(env.process(gen))
