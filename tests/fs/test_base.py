"""Tests of the abstract file-system semantics (via the NFS model)."""

import pytest

from repro.fs import FileSystemError
from tests.fs.conftest import run


def test_open_creates_file_with_write_flag(env, nfs):
    def proc():
        handle, record = yield from nfs.open("/scratch/a.dat", "nid00001", "w")
        return handle, record

    handle, record = run(env, proc())
    assert nfs.exists("/scratch/a.dat")
    assert record.op == "open"
    assert record.duration > 0
    assert not handle.closed


def test_open_missing_file_readonly_raises(env, nfs):
    def proc():
        yield from nfs.open("/missing", "nid00001", "r")

    with pytest.raises(FileSystemError):
        run(env, proc())


def test_write_extends_size_and_read_respects_eof(env, nfs):
    def proc():
        handle, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.write(handle, 1000)
        assert handle.file.size == 1000
        rec = yield from nfs.read(handle, 500, offset=800)
        return rec

    rec = run(env, proc())
    assert rec.nbytes == 200  # truncated at EOF
    assert rec.offset == 800


def test_truncate_on_w_flag(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.write(h, 100)
        yield from nfs.close(h)
        h2, _ = yield from nfs.open("/f", "n", "w")
        return h2.file.size

    assert run(env, proc()) == 0


def test_append_flag_does_not_truncate(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.write(h, 100)
        yield from nfs.close(h)
        h2, _ = yield from nfs.open("/f", "n", "a")
        return h2.file.size

    assert run(env, proc()) == 100


def test_sequential_position_tracking(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        r1 = yield from nfs.write(h, 10)
        r2 = yield from nfs.write(h, 10)
        return r1, r2

    r1, r2 = run(env, proc())
    assert r1.offset == 0
    assert r2.offset == 10


def test_operations_on_closed_handle_raise(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.close(h)
        yield from nfs.write(h, 10)

    with pytest.raises(FileSystemError):
        run(env, proc())


def test_negative_sizes_rejected(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.write(h, -5)

    with pytest.raises(ValueError):
        run(env, proc())


def test_counters_and_totals_accumulate(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.write(h, 100)
        yield from nfs.write(h, 50)
        yield from nfs.read(h, 30, offset=0)
        yield from nfs.close(h)

    run(env, proc())
    f = nfs.files["/f"]
    assert f.counters["opens"] == 1
    assert f.counters["writes"] == 2
    assert f.counters["bytes_written"] == 150
    assert f.counters["bytes_read"] == 30
    assert nfs.totals["bytes_written"] == 150
    assert nfs.totals["bytes_read"] == 30


def test_stat_returns_size(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.write(h, 123)
        yield from nfs.close(h)
        size, _ = yield from nfs.stat("/f", "n")
        return size

    assert run(env, proc()) == 123


def test_unlink_removes_file(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        yield from nfs.close(h)
        yield from nfs.unlink("/f", "n")

    run(env, proc())
    assert not nfs.exists("/f")


def test_unlink_missing_raises(env, nfs):
    def proc():
        yield from nfs.unlink("/ghost", "n")

    with pytest.raises(FileSystemError):
        run(env, proc())


def test_fsync_produces_record(env, nfs):
    def proc():
        h, _ = yield from nfs.open("/f", "n", "w")
        rec = yield from nfs.fsync(h)
        return rec

    assert run(env, proc()).op == "fsync"


def test_op_record_timestamps_are_absolute(nfs):
    """Records carry env-clock (epoch-offset) times, the paper's point."""
    from repro.sim import Environment
    import numpy as np
    from repro.fs import LoadProcess, NFSFileSystem
    from repro.sim import RngRegistry

    env = Environment(initial_time=1.65e9)  # epoch seconds
    reg = RngRegistry(0)
    quiet = LoadProcess(
        reg.stream("l"), diurnal_amplitude=0, noise_sigma=0, n_modes=0, incident_rate=0
    )
    fs = NFSFileSystem(env, quiet, reg.stream("n"))

    def proc():
        h, rec = yield from fs.open("/f", "n", "w")
        return rec

    rec = env.run(env.process(proc()))
    assert rec.start >= 1.65e9
    assert rec.end > rec.start
