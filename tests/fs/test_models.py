"""Behavioural tests of the NFS and Lustre service models."""

import numpy as np
import pytest

from repro.fs import (
    LoadProcess,
    LustreFileSystem,
    LustreParams,
    NFSFileSystem,
    NFSParams,
)
from repro.sim import Environment, RngRegistry
from tests.fs.conftest import run


def _write_time(env, fs, nbytes, n_clients=1):
    """Simulated seconds for n_clients to each write nbytes concurrently."""
    done = []

    def client(i):
        h, _ = yield from fs.open(f"/f{i}", f"nid{i:05d}", "w")
        yield from fs.write(h, nbytes)
        yield from fs.close(h)
        done.append(env.now)

    for i in range(n_clients):
        env.process(client(i))
    env.run()
    return max(done)


# ------------------------------------------------------------------- NFS


def test_nfs_write_time_scales_with_size(env, rng, quiet_load):
    fs = NFSFileSystem(env, quiet_load, rng.stream("n"), NFSParams(cv=0.0))
    t_small = _write_time(env, fs, 1 * 2**20)
    env2 = Environment()
    fs2 = NFSFileSystem(env2, quiet_load, rng.stream("n2"), NFSParams(cv=0.0))
    t_big = _write_time(env2, fs2, 64 * 2**20)
    assert t_big > t_small * 10


def test_nfs_throughput_collapses_under_concurrency(rng, quiet_load):
    """Aggregate time grows once clients exceed server threads."""
    times = {}
    for n_clients in (1, 32):
        env = Environment()
        fs = NFSFileSystem(
            env, quiet_load, rng.stream(f"n{n_clients}"), NFSParams(cv=0.0)
        )
        times[n_clients] = _write_time(env, fs, 8 * 2**20, n_clients)
    # 32 clients through 8 threads: at least ~4x the single-client time.
    assert times[32] > times[1] * 3.5


def test_nfs_aggregate_bandwidth_bounded(rng, quiet_load):
    """8 concurrent writers cannot exceed the single server pipe."""
    env = Environment()
    fs = NFSFileSystem(env, quiet_load, rng.stream("a"), NFSParams(cv=0.0))
    nbytes = 8 * 2**20
    t_eight = _write_time(env, fs, nbytes, n_clients=8)
    expected_serial = 8 * nbytes / fs.params.server_bandwidth_bps
    # All bytes go through one pipe: total time >= serialized transfer.
    assert t_eight >= expected_serial * 0.95


def test_nfs_fsync_pays_commit_latency(rng, quiet_load):
    env = Environment()
    fs = NFSFileSystem(env, quiet_load, rng.stream("c"), NFSParams(cv=0.0))
    done = []

    def proc():
        h, _ = yield from fs.open("/f", "n", "w")
        t0 = env.now
        yield from fs.fsync(h)
        done.append(env.now - t0)

    env.process(proc())
    env.run()
    assert done[0] >= fs.params.commit_latency_s * 0.95


def test_nfs_load_factor_slows_service(rng):
    reg = RngRegistry(7)
    quiet = LoadProcess(
        reg.stream("q"), diurnal_amplitude=0, noise_sigma=0, n_modes=0, incident_rate=0
    )
    busy = LoadProcess(
        reg.stream("b"),
        base=5.0,
        diurnal_amplitude=0,
        noise_sigma=0,
        n_modes=0,
        incident_rate=0,
    )
    env1, env2 = Environment(), Environment()
    fs1 = NFSFileSystem(env1, quiet, reg.stream("f1"), NFSParams(cv=0.0))
    fs2 = NFSFileSystem(env2, busy, reg.stream("f2"), NFSParams(cv=0.0))
    t1 = _write_time(env1, fs1, 2**20)
    t2 = _write_time(env2, fs2, 2**20)
    assert t2 == pytest.approx(5 * t1, rel=0.01)


def test_nfs_params_validation():
    with pytest.raises(ValueError):
        NFSParams(server_threads=0)
    with pytest.raises(ValueError):
        NFSParams(server_bandwidth_bps=0)


# ----------------------------------------------------------------- Lustre


def test_lustre_striping_round_robin(env, lustre):
    chunks = lustre.chunks_for_extent("/f", 0, 4 * 2**20)
    params = lustre.params
    assert len(chunks) == 4
    osts = [c[0] for c in chunks]
    first = lustre.stripe_offset("/f")
    expected = [
        (first + k % params.stripe_count) % params.n_osts for k in range(4)
    ]
    assert osts == expected
    assert all(c[2] == 2**20 for c in chunks)
    assert all(c[3] for c in chunks)  # stripe-aligned
    # Chunk offsets tile the extent.
    assert [c[1] for c in chunks] == [0, 2**20, 2 * 2**20, 3 * 2**20]


def test_lustre_unaligned_chunks_flagged(env, lustre):
    chunks = lustre.chunks_for_extent("/f", 512 * 1024, 2**20)
    assert chunks[0][3] is False  # starts mid-stripe


def test_lustre_chunks_cover_extent(env, lustre):
    total = sum(c[2] for c in lustre.chunks_for_extent("/f", 123456, 7_654_321))
    assert total == 7_654_321


def test_lustre_seek_penalty_for_noncontiguous_access(rng, quiet_load):
    """Scattered writers pay seeks; one streaming writer does not."""
    params = LustreParams(cv=0.0, stripe_count=1, seek_s=0.05)
    chunk = 2**20

    def run_pattern(scattered):
        env = Environment()
        fs = LustreFileSystem(env, quiet_load, rng.stream(f"s{scattered}"), params)
        done = []

        def writer():
            h, _ = yield from fs.open("/f", "n", "w")
            offsets = (
                [i * 10 * chunk for i in range(20)]  # scattered
                if scattered
                else [i * chunk for i in range(20)]  # streaming
            )
            for off in offsets:
                yield from fs.write(h, chunk, off)
            yield from fs.close(h)
            done.append(env.now)

        env.process(writer())
        env.run()
        return done[0]

    assert run_pattern(True) > run_pattern(False) + 0.5


def test_lustre_stripe_offset_stable_per_file(env, lustre):
    assert lustre.stripe_offset("/a") == lustre.stripe_offset("/a")
    assert lustre.stripe_offset("/a") != lustre.stripe_offset("/b")


def test_lustre_parallel_stripes_beat_serial(rng, quiet_load):
    """A striped write is faster than the same bytes through one OST."""
    wide = LustreParams(cv=0.0, stripe_count=4)
    narrow = LustreParams(cv=0.0, stripe_count=1)
    env1 = Environment()
    fs1 = LustreFileSystem(env1, quiet_load, rng.stream("w"), wide)
    t_wide = _write_time(env1, fs1, 16 * 2**20)
    env2 = Environment()
    fs2 = LustreFileSystem(env2, quiet_load, rng.stream("n"), narrow)
    t_narrow = _write_time(env2, fs2, 16 * 2**20)
    assert t_wide < t_narrow / 2


def test_lustre_faster_than_nfs_for_large_io(rng, quiet_load):
    """The headline FS ordering of the paper's tables."""
    env1 = Environment()
    nfs = NFSFileSystem(env1, quiet_load, rng.stream("n"), NFSParams(cv=0.0))
    t_nfs = _write_time(env1, nfs, 64 * 2**20)
    env2 = Environment()
    lustre = LustreFileSystem(env2, quiet_load, rng.stream("l"), LustreParams(cv=0.0))
    t_lustre = _write_time(env2, lustre, 64 * 2**20)
    assert t_lustre < t_nfs / 3


def test_lustre_params_validation():
    with pytest.raises(ValueError):
        LustreParams(n_osts=0)
    with pytest.raises(ValueError):
        LustreParams(stripe_count=99)
    with pytest.raises(ValueError):
        LustreParams(stripe_size_bytes=100)


def test_lustre_ost_queue_introspection(env, lustre):
    assert lustre.ost_queue_lengths() == [0] * lustre.params.n_osts


# ------------------------------------------------------------- LoadProcess


def test_load_factor_deterministic():
    a = LoadProcess(np.random.default_rng(5))
    b = LoadProcess(np.random.default_rng(5))
    ts = np.linspace(0, 1e5, 200)
    assert np.array_equal(a.factor_array(ts), b.factor_array(ts))


def test_load_factor_positive_and_bounded_below():
    lp = LoadProcess(np.random.default_rng(0), noise_sigma=3.0)
    ts = np.linspace(0, 5e5, 5000)
    f = lp.factor_array(ts)
    assert (f >= LoadProcess.MIN_FACTOR).all()


def test_load_quiet_configuration_is_flat():
    lp = LoadProcess(
        np.random.default_rng(1),
        diurnal_amplitude=0.0,
        noise_sigma=0.0,
        n_modes=0,
        incident_rate=0.0,
    )
    ts = np.linspace(0, 1e6, 100)
    assert np.allclose(lp.factor_array(ts), 1.0)


def test_load_incidents_raise_factor():
    lp = LoadProcess(
        np.random.default_rng(3),
        diurnal_amplitude=0.0,
        noise_sigma=0.0,
        n_modes=0,
        incident_rate=1 / 500.0,
        incident_mean_duration=100.0,
        horizon=1e5,
    )
    incidents = lp.incidents_between(0, 1e5)
    assert incidents, "expected at least one incident in the horizon"
    s, e, sev = incidents[0]
    assert sev > 1.0
    mid = (s + e) / 2
    assert lp.factor(mid) >= sev * 0.9  # inside the incident window


def test_load_scalar_matches_array():
    lp = LoadProcess(np.random.default_rng(9))
    ts = np.array([0.0, 1234.5, 99999.0])
    arr = lp.factor_array(ts)
    for t, expected in zip(ts, arr):
        assert lp.factor(float(t)) == pytest.approx(float(expected))


def test_load_validation():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        LoadProcess(rng, base=0.0)
    with pytest.raises(ValueError):
        LoadProcess(rng, diurnal_amplitude=1.5)
    with pytest.raises(ValueError):
        LoadProcess(rng, horizon=-1.0)
    with pytest.raises(ValueError):
        LoadProcess(rng, noise_period_range=(100.0, 50.0))
    with pytest.raises(ValueError):
        LoadProcess(np.random.default_rng(0)).incidents_between(10, 5)


def test_diurnal_component_cycles():
    lp = LoadProcess(
        np.random.default_rng(2),
        diurnal_amplitude=0.5,
        noise_sigma=0.0,
        n_modes=0,
        incident_rate=0.0,
    )
    ts = np.linspace(0, 86400, 1000)
    f = lp.factor_array(ts)
    assert f.max() == pytest.approx(1.5, rel=0.01)
    assert f.min() == pytest.approx(0.5, rel=0.01)
