"""Tests for the POSIX/STDIO veneers and the instrumentation-hook seam."""

import pytest

from repro.fs.posix import IOContext, PosixClient, StdioClient
from tests.fs.conftest import run


class RecordingHook:
    """Captures every dispatched OpRecord; charges no time."""

    def __init__(self):
        self.records = []

    def after_op(self, module, context, record, handle):
        self.records.append((module, record))
        return
        yield  # pragma: no cover - generator marker


class ChargingHook:
    """Charges fixed simulated CPU time per op (like JSON formatting)."""

    def __init__(self, env, cost):
        self.env = env
        self.cost = cost
        self.count = 0

    def after_op(self, module, context, record, handle):
        self.count += 1
        yield self.env.timeout(self.cost)


def test_posix_open_write_close_dispatches_hooks(env, posix_nfs):
    hook = RecordingHook()
    posix_nfs.add_hook(hook)

    def proc():
        h = yield from posix_nfs.open("/f", "w")
        yield from posix_nfs.write(h, 100)
        yield from posix_nfs.read(h, 50, offset=0)
        yield from posix_nfs.close(h)

    run(env, proc())
    ops = [rec.op for _, rec in hook.records]
    assert ops == ["open", "write", "read", "close"]
    assert all(module == "POSIX" for module, _ in hook.records)


def test_posix_hook_charges_time_to_caller(env, posix_nfs):
    hook = ChargingHook(env, cost=10.0)
    posix_nfs.add_hook(hook)

    def proc():
        h = yield from posix_nfs.open("/f", "w")
        yield from posix_nfs.write(h, 10)
        yield from posix_nfs.close(h)
        return env.now

    elapsed = run(env, proc())
    assert hook.count == 3
    assert elapsed >= 30.0  # three ops, 10 s of instrumentation each


def test_posix_bad_hook_rejected(posix_nfs):
    with pytest.raises(TypeError):
        posix_nfs.add_hook(object())


def test_posix_stat_and_fsync_dispatch(env, posix_nfs):
    hook = RecordingHook()
    posix_nfs.add_hook(hook)

    def proc():
        h = yield from posix_nfs.open("/f", "w")
        yield from posix_nfs.write(h, 64)
        yield from posix_nfs.fsync(h)
        yield from posix_nfs.close(h)
        size = yield from posix_nfs.stat("/f")
        return size

    assert run(env, proc()) == 64
    assert [r.op for _, r in hook.records] == [
        "open",
        "write",
        "fsync",
        "close",
        "stat",
    ]


def test_context_carried_on_client(posix_nfs, context):
    assert posix_nfs.context is context
    assert posix_nfs.context.job_id == 259903


# ------------------------------------------------------------------ STDIO


def test_stdio_buffers_small_writes(env, posix_nfs):
    stdio_hook = RecordingHook()
    posix_hook = RecordingHook()
    posix_nfs.add_hook(posix_hook)
    stdio = StdioClient(posix_nfs, buffer_size=1000)
    stdio.add_hook(stdio_hook)

    def proc():
        h = yield from stdio.fopen("/f", "w")
        for _ in range(10):
            yield from stdio.fwrite(h, 150)  # 1500 B total
        yield from stdio.fclose(h)

    run(env, proc())
    stdio_writes = [r for m, r in stdio_hook.records if r.op == "write"]
    posix_writes = [r for m, r in posix_hook.records if r.op == "write"]
    assert len(stdio_writes) == 10  # library sees every fwrite
    # 1500 B through a 1000 B buffer: one full flush + final flush.
    assert len(posix_writes) == 2
    assert sum(r.nbytes for r in posix_writes) == 1500


def test_stdio_module_name(env, posix_nfs):
    stdio = StdioClient(posix_nfs)
    hook = RecordingHook()
    stdio.add_hook(hook)

    def proc():
        h = yield from stdio.fopen("/f", "w")
        yield from stdio.fclose(h)

    run(env, proc())
    assert all(m == "STDIO" for m, _ in hook.records)


def test_stdio_fread_returns_bytes(env, posix_nfs):
    stdio = StdioClient(posix_nfs, buffer_size=4096)

    def proc():
        h = yield from stdio.fopen("/f", "w")
        yield from stdio.fwrite(h, 8192)
        yield from stdio.fclose(h)
        h = yield from stdio.fopen("/f", "r")
        r1 = yield from stdio.fread(h, 100)
        r2 = yield from stdio.fread(h, 100)
        yield from stdio.fclose(h)
        return r1, r2

    r1, r2 = run(env, proc())
    assert r1.nbytes == 100
    assert r2.nbytes == 100
    assert r2.offset == 100


def test_stdio_fflush_drains_buffer(env, posix_nfs):
    posix_hook = RecordingHook()
    posix_nfs.add_hook(posix_hook)
    stdio = StdioClient(posix_nfs, buffer_size=10_000)

    def proc():
        h = yield from stdio.fopen("/f", "w")
        yield from stdio.fwrite(h, 500)
        yield from stdio.fflush(h)
        yield from stdio.fclose(h)

    run(env, proc())
    posix_writes = [r for _, r in posix_hook.records if r.op == "write"]
    assert len(posix_writes) == 1
    assert posix_writes[0].nbytes == 500


def test_stdio_validation(posix_nfs):
    with pytest.raises(ValueError):
        StdioClient(posix_nfs, buffer_size=0)
    stdio = StdioClient(posix_nfs)
    with pytest.raises(TypeError):
        stdio.add_hook(object())


def test_iocontext_immutable(context):
    with pytest.raises(Exception):
        context.rank = 5  # frozen dataclass
