"""Tests for the HDF5-like layer."""

import pytest

from repro.fs import LoadProcess, NFSFileSystem, NFSParams
from repro.fs.posix import IOContext, PosixClient
from repro.hdf5 import H5Dataset, H5File, HDF5Error
from repro.sim import Environment, RngRegistry


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def posix(env):
    reg = RngRegistry(6)
    quiet = LoadProcess(
        reg.stream("l"), diurnal_amplitude=0, noise_sigma=0, n_modes=0, incident_rate=0
    )
    fs = NFSFileSystem(env, quiet, reg.stream("f"), NFSParams(cv=0.0))
    ctx = IOContext(1, 1, 0, "nid00001", "/bin/sw4", "sw4")
    return PosixClient(env, fs, ctx)


class Hook:
    def __init__(self):
        self.records = []

    def after_op(self, module, context, record, handle):
        self.records.append((module, record))
        return
        yield  # pragma: no cover


def run(env, gen):
    return env.run(env.process(gen))


def test_open_create_write_close(env, posix):
    h5 = H5File(posix, "/mesh.h5")
    hook = Hook()
    h5.add_hook(hook)

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (4, 8), element_size=8)
        yield from h5.write_hyperslab("u", (0, 0), (4, 8))
        yield from h5.close()

    run(env, proc())
    modules = [m for m, _ in hook.records]
    assert modules == ["H5F", "H5D", "H5D", "H5F"]
    write = hook.records[2][1]
    assert write.op == "write"
    assert write.nbytes == 4 * 8 * 8
    assert write.data_set == "u"
    assert write.ndims == 2
    assert write.npoints == 32
    assert write.reg_hslab == 1


def test_full_row_slab_is_single_extent(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        ds = yield from h5.create_dataset("u", (10, 100), element_size=4)
        return ds

    ds = run(env, proc())
    extents = ds._slab_extents((2, 0), (3, 100))
    assert len(extents) == 1
    assert extents[0][1] == 3 * 100 * 4


def test_partial_row_slab_fans_out(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        ds = yield from h5.create_dataset("u", (10, 100), element_size=4)
        return ds

    ds = run(env, proc())
    extents = ds._slab_extents((0, 10), (3, 20))
    assert len(extents) == 3  # one per outer row
    assert all(n == 20 * 4 for _, n in extents)


def test_selection_bounds_checked(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (4, 4))
        yield from h5.write_hyperslab("u", (0, 0), (5, 4))

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_rank_mismatch_checked(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (4, 4))
        yield from h5.write_hyperslab("u", (0,), (2,))

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_irregular_selection_counts(env, posix):
    h5 = H5File(posix, "/m.h5")
    hook = Hook()
    h5.add_hook(hook)

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (8, 8))
        yield from h5.write_irregular("u", [((0, 0), (2, 8)), ((4, 0), (2, 8))])
        yield from h5.close()

    run(env, proc())
    write = [r for m, r in hook.records if r.op == "write"][0]
    assert write.irreg_hslab == 1
    assert write.npoints == 32


def test_irregular_requires_slabs(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (4, 4))
        yield from h5.write_irregular("u", [])

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_point_selection(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (10, 10))
        rec = yield from h5.write_points("u", 17)
        return rec

    rec = run(env, proc())
    assert rec.pt_sel == 1
    assert rec.npoints == 17


def test_point_selection_validation(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (2, 2))
        yield from h5.write_points("u", 5)  # larger than dataspace

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_read_hyperslab(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (4, 4))
        yield from h5.write_hyperslab("u", (0, 0), (4, 4))
        rec = yield from h5.read_hyperslab("u", (1, 0), (2, 4))
        return rec

    rec = run(env, proc())
    assert rec.op == "read"
    assert rec.nbytes == 2 * 4 * 8


def test_lifecycle_errors(env, posix):
    h5 = H5File(posix, "/m.h5")

    def use_before_open():
        yield from h5.create_dataset("u", (2, 2))

    with pytest.raises(HDF5Error):
        run(env, use_before_open())

    def double_open():
        yield from h5.open("w")
        yield from h5.open("w")

    h5b = H5File(posix, "/m2.h5")

    def proc():
        yield from h5b.open("w")
        yield from h5b.open("w")

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_duplicate_dataset_rejected(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (2, 2))
        yield from h5.create_dataset("u", (2, 2))

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_unknown_dataset_rejected(env, posix):
    h5 = H5File(posix, "/m.h5")

    def proc():
        yield from h5.open("w")
        yield from h5.write_hyperslab("ghost", (0,), (1,))

    with pytest.raises(HDF5Error):
        run(env, proc())


def test_dataset_shape_validation(env, posix):
    h5 = H5File(posix, "/m.h5")
    with pytest.raises(HDF5Error):
        H5Dataset(h5, "u", (), 8)
    with pytest.raises(HDF5Error):
        H5Dataset(h5, "u", (0, 2), 8)
    with pytest.raises(HDF5Error):
        H5Dataset(h5, "u", (2, 2), 0)


def test_flush_counts(env, posix):
    h5 = H5File(posix, "/m.h5")
    hook = Hook()
    h5.add_hook(hook)

    def proc():
        yield from h5.open("w")
        yield from h5.create_dataset("u", (2, 2))
        yield from h5.flush()
        yield from h5.flush_dataset("u")
        yield from h5.close()

    run(env, proc())
    flushes = [(m, r.op) for m, r in hook.records if r.op == "flush"]
    assert ("H5F", "flush") in flushes
    assert ("H5D", "flush") in flushes
    assert h5.datasets["u"].flushes == 1
