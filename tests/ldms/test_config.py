"""Tests for the ldmsd configuration language."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.ldms.config import ConfigError, build_fleet, parse_config
from repro.sim import Environment, RngRegistry

CONFIG = """
# Voltrino monitoring fleet
ldmsd host=nid*
ldmsd host=head
ldmsd host=shirley
stream_forward from=nid* to=head tag=darshanConnector
stream_forward from=head to=shirley tag=darshanConnector
sampler host=head plugin=meminfo interval=2.0
store host=shirley type=csv tag=darshanConnector
"""


@pytest.fixture
def cluster():
    env = Environment()
    return Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=3))


# ------------------------------------------------------------------ parse


def test_parse_skips_comments_and_blanks():
    directives = parse_config("# hello\n\nldmsd host=a\n")
    assert len(directives) == 1
    assert directives[0].verb == "ldmsd"
    assert directives[0].args == {"host": "a"}


def test_parse_rejects_unknown_verb():
    with pytest.raises(ConfigError, match="line 1"):
        parse_config("frobnicate host=x")


def test_parse_rejects_bad_tokens():
    with pytest.raises(ConfigError, match="key=value"):
        parse_config("ldmsd host")
    with pytest.raises(ConfigError, match="empty"):
        parse_config("ldmsd host=")
    with pytest.raises(ConfigError, match="duplicate key"):
        parse_config("ldmsd host=a host=b")


def test_parse_inline_comment():
    d = parse_config("ldmsd host=a  # the daemon")[0]
    assert d.args == {"host": "a"}


# ------------------------------------------------------------------ build


def test_build_fleet_full_topology(cluster):
    fleet = build_fleet(cluster, CONFIG)
    assert set(fleet.daemons) == {"nid00001", "nid00002", "nid00003", "head", "shirley"}
    assert len(fleet.stores) == 1

    env = cluster.env

    def app():
        d = fleet.daemon_for("nid00002")
        yield from d.publish("darshanConnector", {"module": "POSIX", "op": "write"})

    env.process(app())
    # The configured sampler ticks forever, so drain a bounded horizon.
    env.run(until=1.0)
    assert len(fleet.stores[0]) == 1  # message crossed both hops
    fleet.stop()


def test_build_fleet_sampler_runs(cluster):
    fleet = build_fleet(cluster, CONFIG)
    got = []
    fleet.daemon_for("head").streams.subscribe("metrics/meminfo", got.append)
    env = cluster.env

    def clock():
        yield env.timeout(5.0)
        fleet.stop()

    env.process(clock())
    env.run()
    assert len(got) == 2  # samples at t=2 and t=4


def test_build_fleet_unmatched_host(cluster):
    with pytest.raises(ConfigError, match="matches no node"):
        build_fleet(cluster, "ldmsd host=ghost*")


def test_build_fleet_duplicate_daemon(cluster):
    with pytest.raises(ConfigError, match="duplicate ldmsd"):
        build_fleet(cluster, "ldmsd host=head\nldmsd host=head")


def test_build_fleet_forward_requires_daemons(cluster):
    with pytest.raises(ConfigError, match="no ldmsd configured"):
        build_fleet(
            cluster,
            "ldmsd host=head\nstream_forward from=nid* to=head tag=t",
        )


def test_build_fleet_forward_to_must_be_unique(cluster):
    with pytest.raises(ConfigError, match="exactly one node"):
        build_fleet(
            cluster,
            "ldmsd host=nid*\nstream_forward from=nid00001 to=nid* tag=t",
        )


def test_build_fleet_unknown_sampler(cluster):
    with pytest.raises(ConfigError, match="unknown sampler plugin"):
        build_fleet(cluster, "ldmsd host=head\nsampler host=head plugin=vmstat interval=1")


def test_build_fleet_bad_interval(cluster):
    with pytest.raises(ConfigError, match="interval must be a number"):
        build_fleet(
            cluster, "ldmsd host=head\nsampler host=head plugin=meminfo interval=fast"
        )


def test_build_fleet_unknown_store_type(cluster):
    with pytest.raises(ConfigError, match="unknown store type"):
        build_fleet(
            cluster, "ldmsd host=head\nstore host=head type=sqlite tag=t"
        )


def test_directive_require_reports_missing(cluster):
    with pytest.raises(ConfigError, match="missing"):
        build_fleet(cluster, "stream_forward from=a to=b")


def test_fleet_daemon_lookup_error(cluster):
    fleet = build_fleet(cluster, "ldmsd host=head")
    with pytest.raises(KeyError):
        fleet.daemon_for("nid00001")
