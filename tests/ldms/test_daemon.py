"""Tests for ldmsd daemons, forwarding, aggregation and store plugins."""

import json

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.ldms import (
    AggregationFabric,
    CsvStreamStore,
    Ldmsd,
    LoadSampler,
    MeminfoSampler,
)
from repro.sim import Environment, RngRegistry

TAG = "darshanConnector"


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    return Cluster(env, RngRegistry(4), ClusterSpec(n_compute_nodes=3))


@pytest.fixture
def fabric(cluster):
    return AggregationFabric(cluster, TAG)


def test_publish_charges_small_cost(env, cluster):
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)

    def proc():
        delivered = yield from d.publish(TAG, {"k": 1})
        return delivered, env.now

    delivered, elapsed = env.run(env.process(proc()))
    assert delivered == 0  # nobody subscribed, best-effort drop
    assert 0 < elapsed < 1e-3  # publish is cheap (the 0.37% ablation)


def test_daemon_registered_on_node(env, cluster):
    node = cluster.compute_nodes[0]
    d = Ldmsd(env, node, cluster.network)
    assert node.daemon("ldmsd") is d


def test_forward_to_peer_over_network(env, cluster):
    src = Ldmsd(env, cluster.compute_nodes[0], cluster.network, name="src")
    dst = Ldmsd(env, cluster.head_node, cluster.network, name="dst")
    src.add_stream_forward(TAG, dst)
    got = []
    dst.streams.subscribe(TAG, got.append)

    def proc():
        yield from src.publish(TAG, {"v": 42})

    env.process(proc())
    env.run()  # drain: delivery is asynchronous push
    assert len(got) == 1
    assert json.loads(got[0].payload) == {"v": 42}
    assert got[0].src_node == "nid00001"
    stats = src.forward_stats()[0]
    assert stats.forwarded == 1
    assert stats.dropped_overflow == 0


def test_forward_queue_overflow_drops(env, cluster):
    src = Ldmsd(env, cluster.compute_nodes[0], cluster.network, name="src")
    dst = Ldmsd(env, cluster.head_node, cluster.network, name="dst")
    src.add_stream_forward(TAG, dst, queue_depth=2)

    def burst():
        # Publish a burst far faster than the forwarder can drain.
        for i in range(10):
            src.publish_now(TAG, {"i": i})
        yield env.timeout(1.0)

    env.run(env.process(burst()))
    stats = src.forward_stats()[0]
    assert stats.dropped_overflow > 0
    assert stats.enqueued + stats.dropped_overflow == 10


def test_self_forward_rejected(env, cluster):
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
    with pytest.raises(ValueError):
        d.add_stream_forward(TAG, d)


def test_queue_depth_validation(env, cluster):
    with pytest.raises(ValueError):
        Ldmsd(env, cluster.compute_nodes[1], forward_queue_depth=0)


# ------------------------------------------------------------- aggregation


def test_fabric_builds_two_levels(fabric, cluster):
    assert set(fabric.compute_daemons) == {n.name for n in cluster.compute_nodes}
    assert fabric.l1.node is cluster.head_node
    assert fabric.l2.node is cluster.analysis_node


def test_fabric_end_to_end_delivery(env, cluster, fabric):
    store = CsvStreamStore(fabric.l2, TAG)

    def app_on(node_name, n_msgs):
        d = fabric.daemon_for(node_name)

        def proc():
            for i in range(n_msgs):
                yield from d.publish(
                    TAG,
                    {
                        "module": "POSIX",
                        "rank": i,
                        "job_id": 1,
                        "op": "write",
                        "seg": [{"off": 0, "len": 10, "dur": 0.1, "timestamp": env.now}],
                    },
                )

        return proc()

    env.process(app_on("nid00001", 5))
    env.process(app_on("nid00002", 3))
    env.run()
    assert store.messages_stored == 8
    totals = fabric.totals()
    assert totals.published_on_compute == 8
    assert totals.received_at_l2 == 8
    assert totals.delivery_ratio == 1.0
    assert totals.bytes_forwarded > 0


def test_fabric_unknown_node(fabric):
    with pytest.raises(KeyError):
        fabric.daemon_for("nid09999")


def test_delivery_latency_multihop(env, cluster, fabric):
    """A message is seen at L2 strictly later than publish time."""
    arrivals = []
    fabric.l2.streams.subscribe(TAG, lambda m: arrivals.append((m.publish_time, env.now)))

    def proc():
        yield from fabric.daemon_for("nid00001").publish(TAG, {"x": 1})

    env.process(proc())
    env.run()
    published, arrived = arrivals[0]
    assert arrived > published
    # Must be at least the two-hop propagation latency.
    assert arrived - published >= cluster.network.one_way_latency("nid00001", "shirley")


# --------------------------------------------------------------- samplers


def test_meminfo_sampler_publishes_metric_sets(env, cluster):
    node = cluster.compute_nodes[0]
    d = Ldmsd(env, node, cluster.network)
    got = []
    d.streams.subscribe("metrics/meminfo", got.append)
    d.add_sampler(MeminfoSampler(node), interval_s=1.0)

    def stopper():
        yield env.timeout(5.5)
        d.stop()

    env.process(stopper())
    env.run()
    assert len(got) == 5
    first = json.loads(got[0].payload)
    assert first["producer"] == node.name
    assert first["metrics"]["MemTotal"] == node.memory.capacity


def test_load_sampler_reports_factor(env, cluster):
    import numpy as np
    from repro.fs import LoadProcess

    lp = LoadProcess(
        np.random.default_rng(0),
        base=2.0,
        diurnal_amplitude=0,
        noise_sigma=0,
        n_modes=0,
        incident_rate=0,
    )
    sampler = LoadSampler(lp)
    assert sampler.sample(0.0)["load_factor"] == pytest.approx(2.0)


def test_sampler_interval_validation(env, cluster):
    d = Ldmsd(env, cluster.compute_nodes[2], cluster.network, name="x")
    with pytest.raises(ValueError):
        d.add_sampler(MeminfoSampler(cluster.compute_nodes[2]), interval_s=0)


# ------------------------------------------------------------------ store


def test_csv_store_flattens_like_figure3(env, cluster, fabric):
    store = CsvStreamStore(fabric.l2, TAG)
    message = {
        "uid": 99066,
        "exe": "/apps/mpi-io-test",
        "job_id": 259903,
        "rank": 3,
        "ProducerName": "nid00046",
        "file": "/scratch/out.dat",
        "record_id": 1601543006480906062,
        "module": "POSIX",
        "type": "MET",
        "max_byte": -1,
        "switches": -1,
        "flushes": -1,
        "cnt": 1,
        "op": "open",
        "seg": [
            {
                "data_set": "N/A",
                "pt_sel": -1,
                "irreg_hslab": -1,
                "reg_hslab": -1,
                "ndims": -1,
                "npoints": -1,
                "off": 0,
                "len": 0,
                "dur": 0.01,
                "timestamp": 1650000000.5,
            }
        ],
    }

    def proc():
        yield from fabric.daemon_for("nid00001").publish(TAG, message)

    env.process(proc())
    env.run()
    assert len(store) == 1
    row = store.rows[0]
    assert row["module"] == "POSIX"
    assert row["seg:timestamp"] == 1650000000.5
    assert row["seg:dur"] == 0.01
    assert store.header_line() == (
        "#module,uid,ProducerName,switches,file,rank,flushes,record_id,exe,"
        "max_byte,type,job_id,op,cnt,seg:off,seg:pt_sel,seg:dur,seg:len,"
        "seg:ndims,seg:reg_hslab,seg:irreg_hslab,seg:data_set,seg:npoints,"
        "seg:timestamp"
    )
    csv = store.to_csv()
    assert csv.splitlines()[0].startswith("#module,")
    assert "POSIX" in csv.splitlines()[1]


def test_csv_store_counts_parse_errors(env, cluster):
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
    store = CsvStreamStore(d, TAG)
    d.publish_now(TAG, "{not json", fmt="string")
    d.publish_now(TAG, '"just a string"')
    assert store.parse_errors == 2
    assert len(store) == 0


def test_csv_store_message_without_seg(env, cluster):
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
    store = CsvStreamStore(d, TAG)
    d.publish_now(TAG, {"module": "POSIX", "op": "open"})
    assert len(store) == 1
    assert store.rows[0]["seg:len"] == "N/A"
