"""Tests for LDMS Streams bus semantics."""

import pytest

from repro.ldms import StreamMessage, StreamsBus


def _msg(tag="darshanConnector", payload='{"a":1}', **kw):
    return StreamMessage(tag=tag, payload=payload, **kw)


def test_publish_delivers_to_matching_tag():
    bus = StreamsBus()
    got = []
    bus.subscribe("darshanConnector", got.append)
    assert bus.publish(_msg()) == 1
    assert len(got) == 1
    assert got[0].payload == '{"a":1}'


def test_tag_isolation():
    bus = StreamsBus()
    got = []
    bus.subscribe("other-tag", got.append)
    assert bus.publish(_msg(tag="darshanConnector")) == 0
    assert got == []


def test_no_caching_subscribe_after_publish_misses():
    """The paper's explicit semantics: no replay for late subscribers."""
    bus = StreamsBus()
    bus.publish(_msg())
    got = []
    bus.subscribe("darshanConnector", got.append)
    assert got == []
    assert bus.stats.dropped_no_subscriber == 1


def test_multiple_subscribers_each_get_message():
    bus = StreamsBus()
    a, b = [], []
    bus.subscribe("t", a.append)
    bus.subscribe("t", b.append)
    assert bus.publish(_msg(tag="t")) == 2
    assert len(a) == len(b) == 1


def test_unsubscribe():
    bus = StreamsBus()
    got = []
    bus.subscribe("t", got.append)
    bus.unsubscribe("t", got.append)
    bus.publish(_msg(tag="t"))
    assert got == []
    with pytest.raises(KeyError):
        bus.unsubscribe("t", got.append)


def test_stats_accounting():
    bus = StreamsBus()
    bus.subscribe("t", lambda m: None)
    bus.publish(_msg(tag="t", payload="x" * 100))
    bus.publish(_msg(tag="ghost"))
    assert bus.stats.published == 2
    assert bus.stats.delivered == 1
    assert bus.stats.dropped_no_subscriber == 1
    assert bus.stats.bytes_published == 100 + len('{"a":1}')


def test_delivered_counts_each_successful_callback():
    """A raising subscriber must not inflate the delivered count: only
    callbacks that actually ran are counted."""
    bus = StreamsBus()
    a = []
    bus.subscribe("t", a.append)

    def boom(message):
        raise RuntimeError("subscriber crashed")

    bus.subscribe("t", boom)
    with pytest.raises(RuntimeError):
        bus.publish(_msg(tag="t"))
    assert len(a) == 1
    assert bus.stats.delivered == 1  # not 2: boom never completed


def test_delivered_accurate_when_callback_unsubscribes_mid_delivery():
    """Delivery iterates a snapshot of the subscriber list, so a
    mid-delivery unsubscribe still receives this message — and the
    count reflects what actually happened."""
    bus = StreamsBus()
    b = []

    def a_cb(message, done=[]):
        if not done:
            done.append(True)
            bus.unsubscribe("t", b.append)

    bus.subscribe("t", a_cb)
    bus.subscribe("t", b.append)
    assert bus.publish(_msg(tag="t")) == 2
    assert bus.stats.delivered == 2
    # The unsubscribe takes effect for the *next* publish.
    assert bus.publish(_msg(tag="t")) == 1
    assert bus.stats.delivered == 3


def test_message_format_validation():
    with pytest.raises(ValueError):
        StreamMessage(tag="t", payload="x", fmt="xml")
    assert StreamMessage(tag="t", payload="x", fmt="string").fmt == "string"


def test_subscriber_must_be_callable():
    bus = StreamsBus()
    with pytest.raises(TypeError):
        bus.subscribe("t", "not callable")


def test_message_size():
    assert _msg(payload="abcd").size_bytes == 4
