"""Fixtures building a small communicator over a simulated cluster."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.fs import LoadProcess, NFSFileSystem, NFSParams
from repro.fs.posix import IOContext, PosixClient
from repro.mpi import Communicator, RankContext
from repro.sim import Environment, RngRegistry


def make_comm(env, fs, n_ranks=4, n_nodes=2, ranks_per_node=None):
    """Build a communicator with ranks spread across nodes block-wise."""
    cluster = Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=n_nodes))
    per_node = ranks_per_node or -(-n_ranks // n_nodes)  # ceil div
    ranks = []
    for r in range(n_ranks):
        node = cluster.compute_nodes[min(r // per_node, n_nodes - 1)]
        ctx = IOContext(
            job_id=100, uid=1, rank=r, node_name=node.name, exe="/bin/app", app="t"
        )
        ranks.append(RankContext(rank=r, node=node, posix=PosixClient(env, fs, ctx)))
    return Communicator(env, ranks)


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def fs(env):
    reg = RngRegistry(3)
    quiet = LoadProcess(
        reg.stream("l"),
        diurnal_amplitude=0,
        noise_sigma=0,
        n_modes=0,
        incident_rate=0,
    )
    return NFSFileSystem(env, quiet, reg.stream("fs"), NFSParams(cv=0.0))


@pytest.fixture
def comm(env, fs):
    return make_comm(env, fs)
