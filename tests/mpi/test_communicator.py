"""Tests for barriers, collectives and rank bookkeeping."""

import pytest

from repro.mpi import Communicator
from tests.mpi.conftest import make_comm


def test_comm_size_and_rank_lookup(comm):
    assert comm.size == 4
    assert comm.rank_context(2).rank == 2


def test_ranks_must_be_contiguous(env, fs):
    comm = make_comm(env, fs, n_ranks=2)
    with pytest.raises(ValueError):
        Communicator(env, [comm.ranks[1]])  # starts at rank 1


def test_empty_communicator_rejected(env):
    with pytest.raises(ValueError):
        Communicator(env, [])


def test_nodes_distinct_in_rank_order(env, fs):
    comm = make_comm(env, fs, n_ranks=6, n_nodes=3)
    names = [n.name for n in comm.nodes()]
    assert names == ["nid00001", "nid00002", "nid00003"]


def test_barrier_blocks_until_all_arrive(env, comm):
    arrivals = []

    def worker(rank, delay):
        yield env.timeout(delay)
        yield from comm.barrier(rank)
        arrivals.append((rank, env.now))

    for rank, delay in enumerate([1.0, 5.0, 2.0, 3.0]):
        env.process(worker(rank, delay))
    env.run()
    # Everyone leaves at (just after) the slowest arrival.
    times = [t for _, t in arrivals]
    assert min(times) >= 5.0
    assert max(times) - min(times) < 1e-6 + comm.sync_cost()


def test_barrier_reusable_across_phases(env, comm):
    log = []

    def worker(rank):
        for phase in range(3):
            yield env.timeout(rank + 1.0)
            yield from comm.barrier(rank)
            log.append((phase, rank))

    for r in range(4):
        env.process(worker(r))
    env.run()
    # All of phase k completes before any of phase k+1.
    phases = [p for p, _ in log]
    assert phases == sorted(phases)
    assert len(log) == 12


def test_single_rank_barrier_is_noop(env, fs):
    comm = make_comm(env, fs, n_ranks=1, n_nodes=1)

    def worker():
        yield from comm.barrier(0)
        return env.now

    # A 1-rank communicator's barrier should cost nothing; we need an
    # extra timeout because a generator with no yields still works with
    # yield from.
    def driver():
        yield env.timeout(0)
        yield from comm.barrier(0)
        return env.now

    assert env.run(env.process(driver())) == 0


def test_bcast_charges_log_tree_time(env, comm):
    done = []

    def worker(rank):
        yield from comm.bcast(rank, nbytes=8 * 2**20)
        done.append(env.now)

    for r in range(4):
        env.process(worker(r))
    env.run()
    expected = 2 * (comm.alpha_s + 8 * 2**20 / comm.beta_bps)  # log2(4)=2 rounds
    assert done[0] == pytest.approx(comm.sync_cost() + expected)


def test_allreduce_costs_twice_bcast(env, fs):
    times = {}
    for name, op in (("bcast", "bcast"), ("allreduce", "allreduce")):
        env_i = type(env)()
        comm_i = make_comm(env_i, fs, n_ranks=4)
        done = []

        def worker(rank, comm=comm_i, op=op, env=env_i, done=done):
            yield from getattr(comm, op)(rank, 2**20)
            done.append(env.now)

        for r in range(4):
            env_i.process(worker(r))
        env_i.run()
        times[name] = done[0]
    assert times["allreduce"] > times["bcast"] * 1.5


def test_alltoall_scales_with_pair_bytes(env, fs):
    def total_time(nbytes):
        env_i = type(env)()
        comm_i = make_comm(env_i, fs, n_ranks=4)
        done = []

        def worker(rank):
            yield from comm_i.alltoall(rank, nbytes)
            done.append(env_i.now)

        for r in range(4):
            env_i.process(worker(r))
        env_i.run()
        return done[0]

    assert total_time(2**24) > total_time(2**16) * 10


def test_gather_put_collects_all_ranks(comm):
    assert comm.gather_put("k", 0, "a") is None
    assert comm.gather_put("k", 1, "b") is None
    assert comm.gather_put("k", 2, "c") is None
    full = comm.gather_put("k", 3, "d")
    assert full == {0: "a", 1: "b", 2: "c", 3: "d"}
    # Buffer is recycled; a new round works.
    assert comm.gather_put("k", 0, "x") is None


def test_gather_put_double_deposit_raises(comm):
    comm.gather_put("k", 0, "a")
    with pytest.raises(RuntimeError):
        comm.gather_put("k", 0, "again")
