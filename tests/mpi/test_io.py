"""Tests for the MPI-IO layer: independent and two-phase collective."""

import pytest

from repro.mpi import CollectiveError, MPIIOFile
from tests.mpi.conftest import make_comm


class RecordingHook:
    def __init__(self):
        self.records = []

    def after_op(self, module, context, record, handle):
        self.records.append((module, context.rank, record))
        return
        yield  # pragma: no cover


def run_all_ranks(env, comm, body):
    """Run ``body(rank)`` as one process per rank; return after all done."""
    procs = [env.process(body(r)) for r in range(comm.size)]
    env.run(env.all_of(procs))


def test_open_write_close_independent(env, comm, fs):
    f = MPIIOFile(comm, "/out.dat")
    hook = RecordingHook()
    f.add_hook(hook)

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at(rank, rank * 100, 100)
        yield from f.close_all(rank)

    run_all_ranks(env, comm, body)
    assert fs.files["/out.dat"].size == 400
    mods = {m for m, _, _ in hook.records}
    assert mods == {"MPIIO"}
    ops = sorted(r.op for _, _, r in hook.records)
    assert ops.count("open") == 4
    assert ops.count("write") == 4
    assert ops.count("close") == 4


def test_independent_writes_hit_posix_per_rank(env, comm, fs):
    posix_hook = RecordingHook()
    for rc in comm.ranks:
        rc.posix.add_hook(posix_hook)
    f = MPIIOFile(comm, "/out.dat")

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at(rank, rank * 10, 10)
        yield from f.close_all(rank)

    run_all_ranks(env, comm, body)
    posix_writes = [r for m, _, r in posix_hook.records if r.op == "write"]
    assert len(posix_writes) == 4  # every rank does its own POSIX write


def test_collective_write_aggregates_to_fewer_posix_ops(env, comm, fs):
    posix_hook = RecordingHook()
    for rc in comm.ranks:
        rc.posix.add_hook(posix_hook)
    f = MPIIOFile(comm, "/out.dat", cb_buffer_size=16 * 2**20)
    block = 2**20

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at_all(rank, rank * block, block)
        yield from f.close_all(rank)

    run_all_ranks(env, comm, body)
    posix_writes = [(ctx, r) for m, ctx, r in posix_hook.records if r.op == "write"]
    # 4 MiB total extent fits one cb buffer: exactly one aggregator write.
    assert len(posix_writes) == 1
    assert posix_writes[0][1].nbytes == 4 * block
    assert fs.files["/out.dat"].size == 4 * block


def test_collective_write_chunks_at_cb_buffer(env, comm, fs):
    posix_hook = RecordingHook()
    for rc in comm.ranks:
        rc.posix.add_hook(posix_hook)
    f = MPIIOFile(comm, "/out.dat", cb_buffer_size=2**20)
    block = 2**20

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at_all(rank, rank * block, block)
        yield from f.close_all(rank)

    run_all_ranks(env, comm, body)
    posix_writes = [r for m, _, r in posix_hook.records if r.op == "write"]
    assert len(posix_writes) == 4  # one chunk per MiB
    covered = sorted((r.offset, r.offset + r.nbytes) for r in posix_writes)
    assert covered[0][0] == 0
    assert covered[-1][1] == 4 * block


def test_collective_chunks_distributed_across_aggregators(env, fs):
    env2 = type(env)()
    # Recreate fs bound to env2.
    from repro.fs import LoadProcess, NFSFileSystem, NFSParams
    from repro.sim import RngRegistry

    reg = RngRegistry(5)
    quiet = LoadProcess(
        reg.stream("l"), diurnal_amplitude=0, noise_sigma=0, n_modes=0, incident_rate=0
    )
    fs2 = NFSFileSystem(env2, quiet, reg.stream("f"), NFSParams(cv=0.0))
    comm = make_comm(env2, fs2, n_ranks=4, n_nodes=2)
    posix_hook = RecordingHook()
    for rc in comm.ranks:
        rc.posix.add_hook(posix_hook)
    f = MPIIOFile(comm, "/out.dat", cb_buffer_size=2**20)
    assert len(f.aggregator_ranks) == 2  # one per node
    block = 2**20

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at_all(rank, rank * block, block)
        yield from f.close_all(rank)

    run_all_ranks(env2, comm, body)
    writers = {rank for m, rank, r in posix_hook.records if r.op == "write"}
    assert writers == set(f.aggregator_ranks)


def test_collective_read_back(env, comm, fs):
    f = MPIIOFile(comm, "/out.dat")
    hook = RecordingHook()
    f.add_hook(hook)
    block = 2**20

    def body(rank):
        yield from f.open_all(rank)
        yield from f.write_at_all(rank, rank * block, block)
        rec = yield from f.read_at_all(rank, rank * block, block)
        yield from f.close_all(rank)
        return rec

    run_all_ranks(env, comm, body)
    reads = [r for m, _, r in hook.records if r.op == "read"]
    assert len(reads) == 4
    assert all(r.nbytes == block for r in reads)


def test_read_at_truncates_at_eof(env, comm):
    f = MPIIOFile(comm, "/out.dat")

    def body(rank):
        yield from f.open_all(rank)
        if rank == 0:
            yield from f.write_at(rank, 0, 100)
        yield from f.comm.barrier(rank)
        rec = yield from f.read_at(rank, 50, 100)
        yield from f.close_all(rank)
        return rec

    procs = [env.process(body(r)) for r in range(f.comm.size)]
    results = env.run(env.all_of(procs))
    assert all(rec.nbytes == 50 for rec in results.values())


def test_write_before_open_raises(env, comm):
    f = MPIIOFile(comm, "/out.dat")

    def body():
        yield from f.write_at(0, 0, 10)

    with pytest.raises(CollectiveError):
        env.run(env.process(body()))


def test_double_open_raises(env, comm):
    f = MPIIOFile(comm, "/out.dat")

    def body(rank):
        yield from f.open_all(rank)
        if rank == 0:
            try:
                yield from f.open_all(rank)
            except CollectiveError:
                pass
            else:  # pragma: no cover
                raise AssertionError("expected CollectiveError")
        yield from f.close_all(rank)

    run_all_ranks(env, comm, body)


def test_cb_buffer_validation(comm):
    with pytest.raises(ValueError):
        MPIIOFile(comm, "/x", cb_buffer_size=0)


def test_bad_hook_rejected(comm):
    f = MPIIOFile(comm, "/x")
    with pytest.raises(TypeError):
        f.add_hook(object())


def test_cb_nodes_limits_aggregators(env, fs):
    comm = make_comm(env, fs, n_ranks=8, n_nodes=4)
    f = MPIIOFile(comm, "/x", cb_nodes=2)
    assert len(f.aggregator_ranks) == 2
