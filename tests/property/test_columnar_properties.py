"""The columnar lane's correctness pin: batch speed without divergence.

The record-batch spine claims that moving a rank's burst as one
columnar RecordBatch — and, with the express spine armed, virtualizing
publish→forward→ingest outright — is invisible to the simulation.
These tests hold that line four ways:

* property tests over random events — the columnar serializer's
  accounting (numeric conversions, payload chars, cost) equals the
  reference formatter's, eager and lazy, and the lazily re-rendered
  payload is byte-identical;
* a clean campaign run per lane from one seed — connector stats, DSOS
  rows, simulated end time, telemetry histograms/gauges and per-trace
  hop records all bit-identical between the armed express spine and
  the event-driven fast lane (and stats/rows against the slow lane);
* a de-armed columnar run (foreign L2 subscriber) — the per-message
  ColumnarMessage fallback produces the byte-identical payload stream;
* chaos — a full fault campaign (daemon crash mid-burst, partition,
  slow store, retry, standby, spill/replay) reconciles exactly and
  matches the fast lane counter for counter.
"""

import dataclasses
import json

from hypothesis import given, settings, strategies as st

from repro.apps import Hmmer, MpiIoTest
from repro.core import ConnectorConfig, MessageBuilder
from repro.core.json_format import ColumnarFormatted
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG
from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
from repro.ldms.resilience import RetryPolicy

from tests.property.test_fastlane_properties import _events


# ------------------------------------------------------ random events


@given(events=st.lists(_events(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_columnar_serializer_accounting_is_identical(events):
    columnar = MessageBuilder(fast=True)
    reference = MessageBuilder(fast=False)
    for event in events:
        ref = reference.format(event)
        eager = columnar.format_columnar(event)
        lazy = columnar.format_columnar(event, lazy=True)
        if type(eager) is not ColumnarFormatted:
            continue  # shape self-check fell back; format() covers it
        for fm in (eager, lazy):
            assert fm.numeric_conversions == ref.numeric_conversions
            assert fm.payload_chars == len(ref.payload)
            assert fm.format_cost_s == ref.format_cost_s
        # Eager keeps the slot strings; lazy re-renders on demand.
        assert eager.shape.payload(eager.vstrs) == ref.payload
        assert lazy.vstrs is None
        assert lazy.shape.render(lazy.values)[0] == ref.payload
        assert lazy.shape.parsed(lazy.values) == json.loads(ref.payload)


# ------------------------------------------- clean three-lane identity


def _lane_campaign(lane, *, telemetry=False, subscribe=False):
    fast = lane != "slow"
    columnar = lane == "columnar"
    world = World(WorldConfig(
        seed=1337, quiet=True, n_compute_nodes=2,
        fast_lane=fast, columnar=columnar, telemetry=telemetry,
    ))
    seen = []
    if subscribe:
        # A foreign subscriber on the spine's terminal bus: the armed
        # express spine must stand down before it attaches.
        world.fabric.l2.streams.subscribe(
            STREAM_TAG,
            lambda m: seen.append((m.payload, m.src_node, m.publish_time)),
        )
        if columnar:
            assert not world.spine.armed
    app = Hmmer(ranks_per_node=4, n_families=40)
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast, columnar=columnar),
    )
    out = {
        "stats": dataclasses.asdict(result.connector.stats),
        "rows": [dict(obj) for obj in world.query_job(result.job_id)],
        "sim_runtime": result.runtime_s,
        "now": world.env.now,
        "seen": seen,
    }
    if telemetry:
        t = world.telemetry
        out["hists"] = {k: v.__dict__.copy() for k, v in t.histograms.items()}
        out["gauges"] = {k: v.__dict__.copy() for k, v in t.gauges.items()}
        out["hops"] = {
            tid: [(h.stage, h.node, h.t_in, h.t_out, h.outcome)
                  for h in tr.hops]
            for tid, tr in t.traces.items()
        }
        out["begins"] = {
            tid: (tr.job_id, tr.rank, tr.t_begin)
            for tid, tr in t.traces.items()
        }
    return out, world


def test_columnar_campaign_is_bit_identical_across_lanes():
    slow, _ = _lane_campaign("slow")
    fast, _ = _lane_campaign("fast")
    columnar, world = _lane_campaign("columnar")
    # The express spine actually ran (this is not a fallback pass) and
    # carried every published message.
    assert world.spine.armed and world.spine.stats.dearms == 0
    assert world.spine.stats.rows == columnar["stats"]["messages_published"]
    for key in ("stats", "rows", "sim_runtime", "now"):
        assert columnar[key] == fast[key] == slow[key], key
    assert len(columnar["rows"]) > 0


def test_columnar_telemetry_is_bit_identical_to_fast_lane():
    fast, _ = _lane_campaign("fast", telemetry=True)
    columnar, world = _lane_campaign("columnar", telemetry=True)
    assert world.spine.armed  # telemetry alone must not de-arm
    for key in ("stats", "rows", "hists", "gauges", "begins", "hops"):
        assert columnar[key] == fast[key], key
    assert len(columnar["hops"]) == columnar["stats"]["messages_published"]


def test_dearmed_columnar_payload_stream_is_byte_identical():
    fast, _ = _lane_campaign("fast", subscribe=True)
    columnar, world = _lane_campaign("columnar", subscribe=True)
    # The subscriber de-armed the spine pre-run: this run exercised the
    # per-message ColumnarMessage fallback end to end.
    assert world.spine.stats.dearms == 1
    assert world.spine.stats.rows == 0
    assert columnar["seen"] == fast["seen"]
    assert len(columnar["seen"]) > 0
    for key in ("stats", "rows", "sim_runtime", "now"):
        assert columnar[key] == fast[key], key


# --------------------------------------------------------------- chaos


def _chaos_campaign(*, columnar):
    plan = FaultPlan((
        # Mid-burst compute-daemon crash: messages queued behind the
        # crash spill and replay; a batch in flight at the L1 crash
        # below is dropped with per-row attribution.
        DaemonCrash("nid00001", after_messages=20, down_for=0.4),
        DaemonCrash("l1", after_messages=50, down_for=0.5),
        LinkPartition("nid00002", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))
    world = World(WorldConfig(
        seed=7, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=True, columnar=columnar,
        faults=plan, retry=RetryPolicy(), standby_l1=True,
    ))
    if columnar:
        # Guard discipline: a faulted world must never arm the spine.
        assert world.spine is not None and not world.spine.armed
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(
            spill=True, fast_lane=True, columnar=columnar,
        ),
        inter_job_gap_s=0.0,
    )
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return result, rows, world


def test_chaos_campaign_reconciles_and_matches_fast_lane():
    result_fast, rows_fast, _ = _chaos_campaign(columnar=False)
    result_col, rows_col, world = _chaos_campaign(columnar=True)

    health = result_col.health
    assert health.published > 0
    assert health.verify()  # zero unaccounted events
    assert health.in_flight == 0
    assert len(world.fault_injector.applied) >= 6
    # The run hit the interesting paths: spill/replay happened, and at
    # least one message was only partially delivered when a daemon died.
    stats_col = dataclasses.asdict(result_col.connector.stats)
    assert stats_col["events_spilled"] > 0
    assert stats_col["events_replayed"] > 0
    # Lane identity under chaos: same counters, same rows.
    assert stats_col == dataclasses.asdict(result_fast.connector.stats)
    assert rows_col == rows_fast
    assert result_col.runtime_s == result_fast.runtime_s
