"""Property-based tests: DSOS indices, DataFrame algebra, striping."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dsos import SortedIndex
from repro.fs import LoadProcess, LustreFileSystem, LustreParams
from repro.sim import Environment, RngRegistry
from repro.webservices import DataFrame


# ----------------------------------------------------------------- index


@given(
    keys=st.lists(
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        min_size=0,
        max_size=200,
    )
)
def test_sorted_index_iterates_in_key_order(keys):
    idx = SortedIndex("t", ("a", "b"))
    for oid, key in enumerate(keys):
        idx.add(key, oid)
    got = [k for k, _ in idx.iter_sorted()]
    assert got == sorted(keys)
    assert len(idx) == len(keys)


@given(
    keys=st.lists(st.integers(-50, 50), min_size=1, max_size=100),
    lo=st.integers(-60, 60),
    hi=st.integers(-60, 60),
)
def test_sorted_index_range_equals_filter(keys, lo, hi):
    idx = SortedIndex("t", ("a",))
    for oid, k in enumerate(keys):
        idx.add((k,), oid)
    got = set(idx.range((lo,), (hi,)))
    expected = {oid for oid, k in enumerate(keys) if lo <= k < hi}
    assert got == expected


@given(
    keys=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=80
    ),
    prefix=st.integers(0, 5),
)
def test_sorted_index_prefix_equals_filter(keys, prefix):
    idx = SortedIndex("t", ("a", "b"))
    for oid, key in enumerate(keys):
        idx.add(key, oid)
    got = set(idx.prefix_range((prefix,)))
    expected = {oid for oid, key in enumerate(keys) if key[0] == prefix}
    assert got == expected


@given(
    before=st.lists(st.integers(-20, 20), min_size=0, max_size=40),
    after=st.lists(st.integers(-20, 20), min_size=0, max_size=40),
)
def test_sorted_index_interleaved_adds_and_queries(before, after):
    """Materialization is repeatable: add -> query -> add -> query."""
    idx = SortedIndex("t", ("a",))
    for oid, k in enumerate(before):
        idx.add((k,), oid)
    idx.range(None, None)  # force materialization
    for oid, k in enumerate(after, start=len(before)):
        idx.add((k,), oid)
    got = [k for k, _ in idx.iter_sorted()]
    assert got == sorted([(k,) for k in before + after])


# ------------------------------------------------------------- dataframe


_records = st.lists(
    st.fixed_dictionaries(
        {
            "k": st.integers(0, 4),
            "v": st.floats(-1e6, 1e6, allow_nan=False),
            "s": st.sampled_from(["read", "write", "open"]),
        }
    ),
    min_size=1,
    max_size=100,
)


@given(records=_records)
def test_dataframe_groupby_sum_partitions_total(records):
    df = DataFrame.from_records(records)
    total = float(df["v"].sum())
    grouped = df.groupby("k").agg({"v": "sum"})
    np.testing.assert_allclose(float(np.sum(grouped["v_sum"])), total, rtol=1e-9)


@given(records=_records)
def test_dataframe_groupby_sizes_partition_rows(records):
    df = DataFrame.from_records(records)
    sizes = df.groupby("k", "s").size()
    assert int(np.sum(sizes["n"])) == len(df)


@given(records=_records, threshold=st.floats(-1e6, 1e6, allow_nan=False))
def test_dataframe_filter_complement(records, threshold):
    df = DataFrame.from_records(records)
    above = df.filter(df["v"] > threshold)
    below = df.filter(df["v"] <= threshold)
    assert len(above) + len(below) == len(df)


@given(records=_records)
def test_dataframe_sort_is_permutation(records):
    df = DataFrame.from_records(records)
    out = df.sort_by("v")
    assert sorted(out["v"].tolist()) == sorted(df["v"].tolist())
    assert list(out["v"]) == sorted(df["v"].tolist())


@given(records=_records)
def test_dataframe_roundtrip_records(records):
    df = DataFrame.from_records(records)
    again = DataFrame.from_records(df.to_records())
    for col in df.columns:
        assert list(again[col]) == list(df[col])


# ------------------------------------------------------------- striping


@given(
    offset=st.integers(0, 2**34),
    nbytes=st.integers(1, 2**28),
    stripe_count=st.integers(1, 8),
)
@settings(max_examples=60)
def test_lustre_chunks_tile_extent_exactly(offset, nbytes, stripe_count):
    env = Environment()
    reg = RngRegistry(0)
    quiet = LoadProcess(
        reg.stream("l"), diurnal_amplitude=0, noise_sigma=0, n_modes=0,
        incident_rate=0,
    )
    fs = LustreFileSystem(
        env, quiet, reg.stream("f"),
        LustreParams(cv=0.0, n_osts=8, stripe_count=stripe_count),
    )
    chunks = fs.chunks_for_extent("/f", offset, nbytes)
    # Chunks tile [offset, offset+nbytes) without gaps or overlaps.
    pos = offset
    for ost, chunk_offset, chunk_len, _aligned in chunks:
        assert chunk_offset == pos
        assert chunk_len > 0
        assert 0 <= ost < 8
        pos += chunk_len
    assert pos == offset + nbytes
    # No chunk spans a stripe boundary.
    ssz = fs.params.stripe_size_bytes
    for _, chunk_offset, chunk_len, _ in chunks:
        assert chunk_offset // ssz == (chunk_offset + chunk_len - 1) // ssz
