"""Diagnosis must be invisible: observation changes nothing.

The ISSUE's purity bar: a seeded campaign with the diagnosis engine
armed is *byte-identical* to the same campaign without it — the DSOS
contents, the application timings, the payload stream through L2 and
the telemetry report all agree exactly, on both fast-lane settings.
The engine's ticks are weak simulation events and its sampling is
read-only; this suite is what pins that contract.
"""

import dataclasses

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.diagnosis import DiagnosisConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG


def _campaign(fast: bool, diagnosis):
    world = World(WorldConfig(
        seed=20260806, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, diagnosis=diagnosis,
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast),
    )
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return {
        "world": world,
        "seen": seen,
        "rows": rows,
        "runtime_s": result.runtime_s,
        "final_now": world.env.now,
        "stats": dataclasses.asdict(result.connector.stats),
        "report": result.health.to_dict(),
    }


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_armed_engine_is_byte_identical_to_none(fast):
    diag = DiagnosisConfig(eval_period_s=0.05, window_s=0.25,
                           for_duration_s=0.1)
    plain = _campaign(fast, diagnosis=None)
    armed = _campaign(fast, diagnosis=diag)

    # The engine genuinely ran — this is not a vacuous comparison.
    engine = armed["world"].diagnosis
    assert engine is not None and engine.ticks > 0

    assert armed["seen"] == plain["seen"]          # payload stream
    assert armed["rows"] == plain["rows"]          # DSOS contents
    assert armed["rows"]                           # ...and they exist
    assert armed["runtime_s"] == plain["runtime_s"]  # app timings
    assert armed["final_now"] == plain["final_now"]  # clock untouched
    assert armed["stats"] == plain["stats"]        # connector counters
    assert armed["report"] == plain["report"]      # telemetry report


def test_clean_quiet_campaign_fires_nothing():
    armed = _campaign(True, DiagnosisConfig(
        eval_period_s=0.05, window_s=0.25, for_duration_s=0.1))
    assert len(armed["world"].diagnosis.incidents) == 0
