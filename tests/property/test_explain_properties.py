"""Explanation must be invisible: a job explained post-hoc is
byte-identical to one never explained.

The explain layer has no arming knob by construction — it is a pure
read over a finished world.  This suite pins that the *call itself*
perturbs nothing: every observable surface (the payload stream through
L2, the DSOS rows, the application timings, the simulation clock, the
connector counters and the telemetry report) captured *after* running
:func:`~repro.diagnosis.explain.explain_job` equals the same surfaces
from a twin campaign that never imported the explainer — on all three
lanes (slow, fast, columnar).
"""

import dataclasses

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.diagnosis import DiagnosisConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG

LANES = [
    pytest.param(False, False, id="slow"),
    pytest.param(True, False, id="fast-lane"),
    pytest.param(True, True, id="columnar"),
]


def _campaign(fast: bool, columnar: bool, *, explain: bool):
    world = World(WorldConfig(
        seed=20260806, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, columnar=columnar,
        diagnosis=DiagnosisConfig(eval_period_s=0.05, window_s=0.25,
                                  for_duration_s=0.1),
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast),
    )
    report = None
    if explain:
        from repro.diagnosis.explain import explain_job

        report = explain_job(world, result.job_id)
        # Explain twice: a second read must also change nothing.
        explain_job(world, result.job_id)
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return {
        "seen": seen,
        "rows": rows,
        "runtime_s": result.runtime_s,
        "final_now": world.env.now,
        "stats": dataclasses.asdict(result.connector.stats),
        "report": result.health.to_dict(),
        "explain_report": report,
    }


@pytest.mark.parametrize("fast,columnar", LANES)
def test_explained_campaign_is_byte_identical_to_unexplained(fast, columnar):
    plain = _campaign(fast, columnar, explain=False)
    explained = _campaign(fast, columnar, explain=True)

    # The explainer genuinely ran — this is not a vacuous comparison.
    report = explained["explain_report"]
    assert report is not None and report.verdicts

    assert explained["seen"] == plain["seen"]            # payload stream
    assert explained["rows"] == plain["rows"]            # DSOS contents
    assert explained["rows"]                             # ...and they exist
    assert explained["runtime_s"] == plain["runtime_s"]  # app timings
    assert explained["final_now"] == plain["final_now"]  # clock untouched
    assert explained["stats"] == plain["stats"]          # connector counters
    assert explained["report"] == plain["report"]        # telemetry report


def test_explain_report_is_deterministic_across_reruns():
    a = _campaign(True, False, explain=True)["explain_report"]
    b = _campaign(True, False, explain=True)["explain_report"]
    assert a.to_json() == b.to_json()
