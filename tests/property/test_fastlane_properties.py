"""The fast lane's load-bearing guarantee: speed without divergence.

Every host-side optimization in the pipeline (template-compiled
serialization with the parsed sidecar, coalesced publish, callback
forwarding with fused transfers, batched DSOS ingest) claims to be
invisible to the simulation.  These tests hold that line two ways:

* property tests over random events — the fast serializer's payload is
  byte-identical to the reference walk, its memoized numeric count
  matches a fresh count, and its parsed sidecar equals
  ``json.loads(payload)``;
* a deterministic end-to-end campaign run twice from the same seed,
  fast lane on and off — every payload crossing the final aggregator is
  byte-identical in the identical order, the connector's stats are
  equal, and the DSOS query results are equal row for row.
"""

import dataclasses
import json

from hypothesis import given, settings, strategies as st

from repro.apps import Hmmer
from repro.core import ConnectorConfig, MessageBuilder
from repro.darshan.runtime import IOEvent
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG
from repro.fs.posix import IOContext


# --------------------------------------------------------- random events

_finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


@st.composite
def _events(draw):
    module = draw(st.sampled_from(["POSIX", "MPIIO", "STDIO", "H5F", "H5D"]))
    op = draw(st.sampled_from(["open", "close", "read", "write", "flush"]))
    hdf5 = None
    if module == "H5D":
        hdf5 = {
            "data_set": draw(st.text(
                st.characters(codec="ascii", exclude_characters='"\\',
                              exclude_categories=("Cc",)),
                max_size=12)),
            "ndims": draw(st.integers(-1, 8)),
            "npoints": draw(st.integers(-1, 2**31)),
            "pt_sel": draw(st.integers(-1, 1)),
            "reg_hslab": draw(st.integers(-1, 4)),
            "irreg_hslab": draw(st.integers(-1, 4)),
        }
    start = draw(st.floats(0.0, 2e9))
    ctx = IOContext(
        job_id=draw(st.integers(0, 2**31)),
        uid=draw(st.integers(0, 2**16)),
        rank=draw(st.integers(0, 4096)),
        node_name=f"nid{draw(st.integers(0, 99999)):05d}",
        exe="/apps/bench",
        app="bench",
    )
    return IOEvent(
        module=module,
        op=op,
        path=draw(st.sampled_from(["/scratch/a.dat", "/nfs/x/y.h5", "/f"])),
        record_id=draw(st.integers(0, 2**63 - 1)),
        context=ctx,
        offset=draw(st.integers(0, 2**40)),
        nbytes=draw(st.integers(0, 2**30)),
        start=start,
        end=start + draw(st.floats(0.0, 1e3)),
        cnt=draw(st.integers(0, 2**20)),
        switches=draw(st.integers(0, 2**16)),
        flushes=draw(st.integers(-1, 2**16)),
        max_byte=draw(st.integers(-1, 2**40)),
        hdf5=hdf5,
    )


@given(events=st.lists(_events(), min_size=1, max_size=30))
@settings(max_examples=60, deadline=None)
def test_fast_serializer_is_byte_identical(events):
    fast = MessageBuilder(fast=True)
    slow = MessageBuilder(fast=False)
    for event in events:
        fm_fast = fast.format(event)
        fm_slow = slow.format(event)
        assert fm_fast.payload == fm_slow.payload
        assert fm_fast.numeric_conversions == fm_slow.numeric_conversions
        assert fm_fast.format_cost_s == fm_slow.format_cost_s
        if fm_fast.parsed is not None:
            assert fm_fast.parsed == json.loads(fm_fast.payload)


# ------------------------------------------------- end-to-end determinism


def _campaign(fast: bool):
    """One small HMMER campaign; returns (payload stream at L2, stats,
    stored rows)."""
    world = World(WorldConfig(
        seed=1337, quiet=True, n_compute_nodes=2, fast_lane=fast,
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = Hmmer(ranks_per_node=4, n_families=40)
    result = run_job(
        world, app, "nfs", connector_config=ConnectorConfig(fast_lane=fast)
    )
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return seen, dataclasses.asdict(result.connector.stats), rows


def test_fast_lane_campaign_is_bit_identical():
    seen_slow, stats_slow, rows_slow = _campaign(fast=False)
    seen_fast, stats_fast, rows_fast = _campaign(fast=True)

    assert stats_fast == stats_slow          # every counter and second
    assert len(seen_fast) == len(seen_slow)  # nothing dropped or dup'd
    # Byte-identical payloads, identical provenance, identical publish
    # instants, in the identical order — transport coalescing changed
    # how messages move, not what or when.
    assert seen_fast == seen_slow
    assert rows_fast == rows_slow            # the database agrees
    assert len(rows_fast) > 0                # and it is non-trivial
