"""Fault-injection machinery must be invisible until it acts.

Two properties hold the chaos harness to the simulator's determinism
bar:

* an *empty* :class:`FaultPlan` arms to nothing — a world built with it
  is bit-identical (payload stream, connector stats, DSOS rows) to a
  world built with ``faults=None``;
* a full chaos campaign reconciles exactly with the fast lane on *and*
  off — recovery machinery, like the fast lane itself, never produces
  unaccounted events.
"""

import dataclasses

import pytest

from repro.apps import Hmmer, MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG
from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
from repro.ldms.resilience import RetryPolicy


# ------------------------------------------------ empty plan ≡ no plan


def _baseline_campaign(faults):
    world = World(WorldConfig(
        seed=1337, quiet=True, n_compute_nodes=2, faults=faults,
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = Hmmer(ranks_per_node=4, n_families=40)
    result = run_job(world, app, "nfs", connector_config=ConnectorConfig())
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return seen, dataclasses.asdict(result.connector.stats), rows


def test_empty_fault_plan_is_bit_identical_to_no_plan():
    seen_none, stats_none, rows_none = _baseline_campaign(faults=None)
    seen_empty, stats_empty, rows_empty = _baseline_campaign(faults=FaultPlan())

    assert stats_empty == stats_none   # every counter and second
    assert seen_empty == seen_none     # byte-identical payload stream
    assert rows_empty == rows_none     # the database agrees
    assert len(rows_empty) > 0


def test_empty_plan_installs_no_machinery():
    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=2,
                              faults=FaultPlan()))
    assert world.fault_injector is not None  # armed...
    assert world.fault_injector.applied == []  # ...to nothing
    assert world.fault_injector._rng is None  # no RNG stream drawn


# -------------------------------------- chaos reconciles on both lanes


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_chaos_campaign_reconciles_on_both_lanes(fast):
    plan = FaultPlan((
        DaemonCrash("l1", after_messages=50, down_for=0.5),
        LinkPartition("nid00001", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))
    world = World(WorldConfig(
        seed=7, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, faults=plan, retry=RetryPolicy(), standby_l1=True,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(spill=True, fast_lane=fast),
        inter_job_gap_s=0.0,
    )

    health = result.health
    assert health.published > 0
    assert health.verify()  # zero unaccounted events
    assert health.in_flight == 0
    # The run was genuinely chaotic, not a trivial pass.
    assert len(world.fault_injector.applied) == 6
    assert health.recovery_sites()  # at least one self-healing event
