"""Probe scans must be invisible: armed ≡ absent, byte for byte.

The fleet ISSUE's purity bar, mirroring the diagnosis suite: a seeded
campaign with the probe scanner armed is *byte-identical* to the same
campaign without it — DSOS contents, application timings, the payload
stream through L2 and the telemetry report all agree exactly, on both
fast-lane settings.  The scanner's ticks are weak events and its
traversal is a ghost walk over the spine's cost model; this suite is
what pins that contract.
"""

import dataclasses

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.diagnosis import DiagnosisConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG
from repro.fleet import ProbeConfig


def _campaign(fast: bool, probe, diagnosis=None):
    world = World(WorldConfig(
        seed=20260809, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, probe=probe, diagnosis=diagnosis,
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast),
    )
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return {
        "world": world,
        "seen": seen,
        "rows": rows,
        "runtime_s": result.runtime_s,
        "final_now": world.env.now,
        "stats": dataclasses.asdict(result.connector.stats),
        "report": result.health.to_dict(),
    }


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_armed_probe_scanner_is_byte_identical_to_none(fast):
    plain = _campaign(fast, probe=None)
    armed = _campaign(fast, probe=ProbeConfig(period_s=0.05))

    # The scanner genuinely swept — this is not a vacuous comparison.
    scanner = armed["world"].probe_scanner
    assert scanner is not None and scanner.sweeps > 0
    assert scanner.samples

    assert armed["seen"] == plain["seen"]          # payload stream
    assert armed["rows"] == plain["rows"]          # DSOS contents
    assert armed["rows"]                           # ...and they exist
    assert armed["runtime_s"] == plain["runtime_s"]  # app timings
    assert armed["final_now"] == plain["final_now"]  # clock untouched
    assert armed["stats"] == plain["stats"]        # connector counters
    assert armed["report"] == plain["report"]      # telemetry report


def test_probes_plus_diagnosis_together_stay_invisible():
    """The full fleet-scan instrumentation stack is still a no-op."""
    plain = _campaign(True, probe=None, diagnosis=None)
    armed = _campaign(
        True,
        probe=ProbeConfig(period_s=0.05),
        diagnosis=DiagnosisConfig(eval_period_s=0.05, window_s=0.25,
                                  for_duration_s=0.1),
    )
    assert armed["world"].probe_scanner.sweeps > 0
    assert armed["world"].diagnosis.ticks > 0
    for key in ("seen", "rows", "runtime_s", "final_now", "stats",
                "report"):
        assert armed[key] == plain[key], key


def test_clean_campaign_probes_all_delivered():
    armed = _campaign(True, probe=ProbeConfig(period_s=0.05))
    report = armed["world"].probe_scanner.report()
    assert report.lost_nodes == []
    assert report.stragglers == []
    assert all(n.probes == report.sweeps for n in report.nodes)
    assert report.median_latency_s > 0
