"""The flight recorder must be invisible: recording changes nothing.

The ISSUE's house pin: a seeded campaign with the recorder armed is
*byte-identical* to the same campaign without it — the payload stream
through L2, the DSOS contents, the application timings, the connector
counters and the telemetry report all agree exactly, on all three
lanes (slow reference, fast lane, columnar).  The recorder's tick is a
weak simulation event and every hook appends into host-side state
only; this suite is what pins that contract, including under an
active chaos plan (observer callbacks firing on every layer).
"""

import dataclasses

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.diagnosis import DiagnosisConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG


def _campaign(*, fast: bool, columnar: bool, flightrec, faults=None):
    extra = {}
    if faults is not None:
        from repro.ldms.resilience import RetryPolicy

        extra = {"faults": faults, "retry": RetryPolicy(), "standby_l1": True}
    world = World(WorldConfig(
        seed=20260809, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=fast, columnar=columnar,
        diagnosis=DiagnosisConfig(eval_period_s=0.05, window_s=0.25,
                                  for_duration_s=0.1),
        flightrec=flightrec,
        **extra,
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast),
    )
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return {
        "world": world,
        "seen": seen,
        "rows": rows,
        "runtime_s": result.runtime_s,
        "final_now": world.env.now,
        "stats": dataclasses.asdict(result.connector.stats),
        "report": result.health.to_dict(),
    }


def _assert_identical(armed, plain):
    # The recorder genuinely ran — not a vacuous comparison.
    recorder = armed["world"].flight_recorder
    assert recorder is not None and recorder.ticks > 0
    assert plain["world"].flight_recorder is None

    assert armed["seen"] == plain["seen"]            # payload stream
    assert armed["rows"] == plain["rows"]            # DSOS contents
    assert armed["rows"]                             # ...and they exist
    assert armed["runtime_s"] == plain["runtime_s"]  # app timings
    assert armed["final_now"] == plain["final_now"]  # clock untouched
    assert armed["stats"] == plain["stats"]          # connector counters
    assert armed["report"] == plain["report"]        # telemetry report


@pytest.mark.parametrize(
    "fast,columnar",
    [(False, False), (True, False), (True, True)],
    ids=["reference", "fast-lane", "columnar"],
)
def test_armed_recorder_is_byte_identical_to_none(fast, columnar):
    plain = _campaign(fast=fast, columnar=columnar, flightrec=False)
    armed = _campaign(fast=fast, columnar=columnar, flightrec=True)
    _assert_identical(armed, plain)


def test_armed_recorder_is_byte_identical_under_chaos():
    """Purity with every hook firing: alerts, recovery hops, faults."""
    from repro.diagnosis.forensics import chaos_plan

    plain = _campaign(fast=True, columnar=False, flightrec=False,
                      faults=chaos_plan())
    armed = _campaign(fast=True, columnar=False, flightrec=True,
                      faults=chaos_plan())
    recorder = armed["world"].flight_recorder
    recorder.flush()
    assert recorder.bundles  # the hooks genuinely captured an incident
    assert recorder.reconciles()
    _assert_identical(armed, plain)


def test_columnar_spine_refuses_to_arm_under_recorder():
    """The express spine must stand down when the recorder is armed —
    the recorder alone breaks the inert-world guard, and the
    bit-identical per-message fallback carries the run (the purity
    pin above proves the fallback byte-identical)."""
    base = dict(seed=1, quiet=True, n_compute_nodes=4,
                fast_lane=True, columnar=True)
    control = World(WorldConfig(**base))
    assert control.spine is not None and control.spine.armed
    guarded = World(WorldConfig(**base, flightrec=True))
    assert guarded.flight_recorder is not None
    assert guarded.spine is not None and not guarded.spine.armed
