"""More property-based tests: heatmap, CSV store, overhead math, schema."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import mean_confidence_interval, percent_overhead
from repro.darshan.heatmap import Heatmap
from repro.dsos.schema import Attr, Schema, SchemaError
from repro.ldms.store import CSV_HEADER, CsvStreamStore


# ----------------------------------------------------------------- heatmap


@given(
    ops=st.lists(
        st.tuples(
            st.integers(0, 7),                               # rank
            st.sampled_from(["read", "write"]),              # op
            st.integers(1, 10**9),                           # nbytes
            st.floats(0.0, 10_000.0, allow_nan=False),       # start
            st.floats(0.0, 1_000.0, allow_nan=False),        # extra duration
        ),
        min_size=1,
        max_size=60,
    )
)
def test_heatmap_conserves_bytes(ops):
    hm = Heatmap(n_bins=32, initial_bin_width_s=0.5)
    for rank, op, nbytes, start, extra in ops:
        hm.record(rank, op, nbytes, start, start + extra)
    assert hm.conservation_check()
    for op in ("read", "write"):
        expected = sum(n for _, o, n, _, _ in ops if o == op)
        assert hm.matrix(op).sum() == pytest.approx(expected, rel=1e-9)


@given(
    events=st.lists(
        st.tuples(st.floats(0, 10_000, allow_nan=False), st.integers(1, 10**6)),
        min_size=1,
        max_size=40,
    )
)
def test_heatmap_payload_roundtrip_preserves_grids(events):
    hm = Heatmap(n_bins=16, initial_bin_width_s=1.0)
    for t, n in events:
        hm.record(0, "write", n, t, t + 0.5)
    back = Heatmap.from_payload(hm.to_payload())
    np.testing.assert_allclose(back.grid(0, "write"), hm.grid(0, "write"))
    assert back.bin_width_s == hm.bin_width_s


# --------------------------------------------------------------- csv store


class _FakeDaemon:
    def __init__(self):
        from repro.ldms.streams import StreamsBus

        self.streams = StreamsBus()


_seg = st.fixed_dictionaries(
    {
        "off": st.integers(0, 2**40),
        "len": st.integers(0, 2**30),
        "dur": st.floats(0, 100, allow_nan=False),
        "timestamp": st.floats(0, 2e9, allow_nan=False),
    }
)

_message = st.fixed_dictionaries(
    {
        "module": st.sampled_from(["POSIX", "STDIO", "MPIIO"]),
        "op": st.sampled_from(["open", "close", "read", "write"]),
        "rank": st.integers(0, 1000),
        "job_id": st.integers(1, 10**6),
        "seg": st.lists(_seg, min_size=1, max_size=4),
    }
)


@given(messages=st.lists(_message, min_size=1, max_size=30))
def test_csv_store_rows_equal_total_segments(messages):
    import json

    from repro.ldms.streams import StreamMessage

    daemon = _FakeDaemon()
    store = CsvStreamStore(daemon, "t")
    for m in messages:
        daemon.streams.publish(StreamMessage(tag="t", payload=json.dumps(m)))
    assert len(store) == sum(len(m["seg"]) for m in messages)
    assert store.parse_errors == 0
    # Every row has every header column.
    for row in store.rows:
        assert set(row) == set(CSV_HEADER)


# ------------------------------------------------------------ overhead math


@given(
    base=st.floats(1e-3, 1e5, allow_nan=False),
    factor=st.floats(0.1, 50.0, allow_nan=False),
)
def test_percent_overhead_inverts_cleanly(base, factor):
    ov = percent_overhead(base, base * factor)
    assert ov == pytest.approx((factor - 1) * 100, rel=1e-9)


@given(
    samples=st.lists(st.floats(-1e6, 1e6, allow_nan=False), min_size=2, max_size=50),
)
def test_ci_contains_mean_and_scales(samples):
    mean, half = mean_confidence_interval(samples)
    assert half >= 0
    assert mean == pytest.approx(float(np.mean(samples)), abs=1e-6)
    # 99% CI is at least as wide as 95%.
    _, half99 = mean_confidence_interval(samples, confidence=0.99)
    assert half99 >= half - 1e-12


# ----------------------------------------------------------------- schema


@given(
    job=st.integers(-(2**40), 2**40),
    rank=st.integers(0, 10**6),
    ts=st.floats(-1e12, 1e12, allow_nan=False),
)
def test_schema_key_total_order_consistent(job, rank, ts):
    schema = Schema(
        "e",
        [Attr("job_id", "int"), Attr("rank", "int"), Attr("timestamp", "float")],
        {"jrt": ("job_id", "rank", "timestamp")},
    )
    obj = {"job_id": job, "rank": rank, "timestamp": ts}
    schema.validate(obj)
    key = schema.key_for("jrt", obj)
    assert key == (job, rank, ts)
    # Keys are orderable against any other valid key.
    other = schema.key_for("jrt", {"job_id": 0, "rank": 0, "timestamp": 0.0})
    assert (key < other) or (key > other) or (key == other)
