"""Property-based tests of connector, sampler, streams and load model."""

import json

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core import EventSampler, FormatCostModel, MessageBuilder
from repro.core.metrics import MESSAGE_FIELDS, SEG_FIELDS
from repro.darshan.runtime import IOEvent
from repro.fs import LoadProcess
from repro.fs.posix import IOContext
from repro.ldms import StreamMessage, StreamsBus


def _event(op, rank, module="POSIX", offset=0, nbytes=0):
    ctx = IOContext(1, 1, rank, "nid00001", "/bin/app", "app")
    return IOEvent(
        module=module,
        op=op,
        path="/f",
        record_id=1,
        context=ctx,
        offset=offset,
        nbytes=nbytes,
        start=0.0,
        end=1.0,
        cnt=1,
        switches=0,
        flushes=-1,
        max_byte=offset + nbytes - 1 if nbytes else -1,
    )


# ----------------------------------------------------------------- sampler


@given(
    every_n=st.integers(1, 20),
    ops=st.lists(
        st.sampled_from(["read", "write", "open", "close"]),
        min_size=1,
        max_size=300,
    ),
)
def test_sampler_admits_expected_count(every_n, ops):
    sampler = EventSampler(every_n)
    admitted_data = 0
    data_seen = 0
    for op in ops:
        ev = _event(op, rank=0)
        admitted = sampler.admit(ev)
        if op in ("read", "write"):
            data_seen += 1
            admitted_data += admitted
        else:
            assert admitted  # metadata ops always pass

    expected = -(-data_seen // every_n)  # ceil
    assert admitted_data == expected
    assert sampler.admitted + sampler.suppressed == len(ops)


@given(
    every_n=st.integers(2, 10),
    per_rank=st.integers(1, 50),
    n_ranks=st.integers(1, 8),
)
def test_sampler_is_per_rank_fair(every_n, per_rank, n_ranks):
    sampler = EventSampler(every_n)
    counts = {r: 0 for r in range(n_ranks)}
    for _ in range(per_rank):
        for r in range(n_ranks):
            if sampler.admit(_event("write", rank=r)):
                counts[r] += 1
    expected = -(-per_rank // every_n)
    assert all(c == expected for c in counts.values())


# --------------------------------------------------------------- formatter


@given(
    op=st.sampled_from(["open", "close", "read", "write"]),
    offset=st.integers(0, 2**40),
    nbytes=st.integers(0, 2**30),
    rank=st.integers(0, 4096),
)
def test_message_json_roundtrip_and_field_order(op, offset, nbytes, rank):
    builder = MessageBuilder()
    fm = builder.format(_event(op, rank, offset=offset, nbytes=nbytes))
    parsed = json.loads(fm.payload)
    assert tuple(parsed.keys()) == MESSAGE_FIELDS
    assert tuple(parsed["seg"][0].keys()) == SEG_FIELDS
    assert parsed["rank"] == rank
    assert parsed["op"] == op
    assert parsed["type"] == ("MET" if op == "open" else "MOD")
    assert fm.numeric_conversions > 0
    assert fm.format_cost_s > 0


@given(
    numeric=st.integers(0, 1000),
    chars=st.integers(0, 100_000),
)
def test_cost_model_monotone(numeric, chars):
    model = FormatCostModel()
    base = model.cost(numeric, chars)
    assert model.cost(numeric + 1, chars) > base
    assert model.cost(numeric, chars + 1) >= base


# ------------------------------------------------------------------- bus


@given(
    tags=st.lists(st.sampled_from(["a", "b", "c"]), min_size=1, max_size=100),
    subscribed=st.sets(st.sampled_from(["a", "b", "c"])),
)
def test_bus_accounting_balances(tags, subscribed):
    bus = StreamsBus()
    received = []
    for tag in subscribed:
        bus.subscribe(tag, received.append)
    for tag in tags:
        bus.publish(StreamMessage(tag=tag, payload="x"))
    matched = sum(1 for t in tags if t in subscribed)
    assert bus.stats.published == len(tags)
    assert bus.stats.delivered == matched
    assert bus.stats.dropped_no_subscriber == len(tags) - matched
    assert len(received) == matched


# --------------------------------------------------------------- load model


@given(seed=st.integers(0, 10_000), t=st.floats(0, 3e6, allow_nan=False))
def test_load_factor_positive_and_deterministic(seed, t):
    a = LoadProcess(np.random.default_rng(seed))
    b = LoadProcess(np.random.default_rng(seed))
    fa, fb = a.factor(t), b.factor(t)
    assert fa == fb
    assert fa >= LoadProcess.MIN_FACTOR


@given(
    seed=st.integers(0, 1000),
    origin=st.floats(0, 1e9, allow_nan=False),
    t=st.floats(0, 1e6, allow_nan=False),
)
@settings(max_examples=50)
def test_load_origin_is_pure_shift(seed, origin, t):
    base = LoadProcess(np.random.default_rng(seed))
    shifted = LoadProcess(np.random.default_rng(seed), origin=origin)
    x = t + origin
    # Exact identity on the same arithmetic path (x - origin), which is
    # what the experiment worlds evaluate.
    assert shifted.factor(x) == base.factor(x - origin)
