"""Property-based tests of the DES kernel's core guarantees."""

import json

from hypothesis import given, settings, strategies as st

from repro.sim import Environment, Resource, Store


@given(delays=st.lists(st.floats(min_value=0.0, max_value=1e6,
                                 allow_nan=False, allow_infinity=False),
                       min_size=1, max_size=50))
def test_events_fire_in_nondecreasing_time_order(delays):
    """The clock never goes backwards, whatever the schedule."""
    env = Environment()
    fired = []

    def waiter(d):
        yield env.timeout(d)
        fired.append(env.now)

    for d in delays:
        env.process(waiter(d))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(delays=st.lists(st.floats(min_value=0.0, max_value=100.0,
                                 allow_nan=False), min_size=2, max_size=30))
def test_equal_time_events_fire_in_schedule_order(delays):
    """FIFO tie-breaking: same-delay events resume in creation order."""
    env = Environment()
    order = []

    def waiter(i, d):
        yield env.timeout(d)
        order.append(i)

    rounded = [round(d, 1) for d in delays]
    for i, d in enumerate(rounded):
        env.process(waiter(i, d))
    env.run()
    # Stable sort of indices by delay must equal the observed order.
    expected = [i for i, _ in sorted(enumerate(rounded), key=lambda p: p[1])]
    assert order == expected


@given(
    capacity=st.integers(min_value=1, max_value=8),
    service_times=st.lists(
        st.floats(min_value=0.01, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
)
def test_resource_never_exceeds_capacity(capacity, service_times):
    env = Environment()
    res = Resource(env, capacity=capacity)
    concurrency = {"now": 0, "max": 0}

    def user(t):
        req = res.request()
        yield req
        concurrency["now"] += 1
        concurrency["max"] = max(concurrency["max"], concurrency["now"])
        yield env.timeout(t)
        concurrency["now"] -= 1
        res.release(req)

    for t in service_times:
        env.process(user(t))
    env.run()
    assert concurrency["max"] <= capacity
    assert concurrency["now"] == 0
    assert res.count == 0


@given(
    items=st.lists(st.integers(), min_size=1, max_size=50),
    capacity=st.integers(min_value=1, max_value=10),
)
def test_store_is_fifo_and_lossless_with_blocking_put(items, capacity):
    env = Environment()
    store = Store(env, capacity=capacity)
    received = []

    def producer():
        for item in items:
            yield store.put(item)

    def consumer():
        for _ in items:
            got = yield store.get()
            received.append(got)
            yield env.timeout(0.1)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert received == items


@given(
    n_items=st.integers(min_value=1, max_value=100),
    capacity=st.integers(min_value=1, max_value=20),
)
def test_store_try_put_accounts_every_item(n_items, capacity):
    """try_put accepts or drops; accepted + dropped == offered."""
    env = Environment()
    store = Store(env, capacity=capacity)
    accepted = sum(1 for i in range(n_items) if store.try_put(i))
    assert accepted == min(n_items, capacity)
    assert len(store) == accepted


def _campaign_fingerprint(seed: int, telemetry: bool) -> tuple:
    """Everything observable from one seeded campaign, serialized."""
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.darshan.cli import render_log
    from repro.experiments import World, WorldConfig, run_job

    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=telemetry,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=2, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs", connector_config=ConnectorConfig())
    rows = world.query_job(result.job_id).rows
    return (
        result.runtime_s,
        result.messages_published,
        json.dumps(rows, sort_keys=True, default=str),
        render_log(result.darshan_log),
    )


@given(seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=3, deadline=None)
def test_telemetry_is_purely_observational(seed):
    """A seeded campaign is byte-identical with tracing on or off: the
    collector observes the pipeline without perturbing it (no RNG, no
    clock reads, no extra events, no payload changes)."""
    assert _campaign_fingerprint(seed, False) == _campaign_fingerprint(seed, True)


@given(st.data())
@settings(max_examples=30)
def test_fork_join_always_terminates_at_max_child_time(data):
    n = data.draw(st.integers(min_value=1, max_value=10))
    durations = data.draw(
        st.lists(
            st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    env = Environment()

    def child(d):
        yield env.timeout(d)

    def parent():
        procs = [env.process(child(d)) for d in durations]
        yield env.all_of(procs)
        return env.now

    finished = env.run(env.process(parent()))
    assert finished == max(durations)
