"""Span-tree properties: exactness, purity, tail retention, exemplars.

The ISSUE's bars for the tracing layer, pinned across a seeded chaos
campaign on both fast-lane settings:

* **Exactness** — every retained stored trace's critical path sums
  *exactly* (``==``, not approx) to its end-to-end latency, and the
  campaign rollup reconciles with the sim-time
  :class:`~repro.sim.PipelineProfile` built from the same trees.
* **Purity** — arming span telemetry at *any* head-sampling rate is
  byte-identical to running with telemetry absent: same L2 payload
  stream, same DSOS rows, same application timings, same final clock.
  Building registries/paths after the run schedules nothing.
* **Tail sampling** — at head rate 0, every dropped, recovered
  (replayed / redelivered / failover / dedup-skipped) and spilled
  trace is still retained; retention counters add up.
* **Exemplars** — every bucket exemplar id on the end-to-end histogram
  resolves to a retained tree that actually bins there.
"""

import dataclasses

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG
from repro.faults import DaemonCrash, FaultPlan, LinkPartition, SlowStore
from repro.ldms.resilience import RetryPolicy
from repro.sim import PipelineProfile
from repro.telemetry.collector import END_TO_END
from repro.telemetry.spans import TelemetryConfig, critical_path

SEED = 20260806


def _chaos_plan():
    return FaultPlan((
        DaemonCrash("l1", after_messages=40, down_for=0.5),
        LinkPartition("nid00001", "head", at=0.2, duration=0.3),
        SlowStore(at=0.1, duration=0.4),
    ))


def _campaign(fast: bool, telemetry, faults=None):
    world = World(WorldConfig(
        seed=SEED, quiet=True, n_compute_nodes=4, telemetry=telemetry,
        fast_lane=fast, faults=faults,
        retry=RetryPolicy() if faults is not None else None,
        standby_l1=faults is not None,
    ))
    seen = []
    world.fabric.l2.streams.subscribe(
        STREAM_TAG, lambda m: seen.append((m.payload, m.src_node, m.publish_time))
    )
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=6, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(
            spill=faults is not None, fast_lane=fast,
        ),
        inter_job_gap_s=0.0,
    )
    rows = [dict(obj) for obj in world.query_job(result.job_id)]
    return {
        "world": world,
        "seen": seen,
        "rows": rows,
        "runtime_s": result.runtime_s,
        "final_now": world.env.now,
        "stats": dataclasses.asdict(result.connector.stats),
    }


# ------------------------------------------------------------ exactness


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_critical_paths_sum_exactly_under_chaos(fast):
    out = _campaign(fast, telemetry=True, faults=_chaos_plan())
    registry = out["world"].trace_registry()
    assert registry.offered == len(registry)  # keep-all default
    stored = [t for t in registry.trees.values() if t.status == "stored"]
    assert len(stored) > 100  # the property quantifies over real volume
    for tree in stored:
        path = critical_path(tree)
        assert path.exact
        assert path.total_s == tree.end_to_end_s

    rollup = registry.rollup()
    assert rollup.messages == len(stored)
    profile = PipelineProfile.from_registry(registry)
    assert profile.reconciles()
    assert rollup.reconciles_with(profile)
    # And against the profile built straight from the raw traces — the
    # trees must not have reshaped any timing.
    raw = PipelineProfile.from_collector(out["world"].telemetry)
    assert raw.end_to_end_s == profile.end_to_end_s
    assert raw.messages == profile.messages


# ------------------------------------------------------------ purity


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_armed_spans_byte_identical_to_absent(fast):
    """Telemetry armed (sampled policy) vs absent: identical bytes."""
    plain = _campaign(fast, telemetry=False, faults=_chaos_plan())
    armed = _campaign(
        fast,
        telemetry=TelemetryConfig(head_sample_rate=0.3, tail_latency_s=0.2),
        faults=_chaos_plan(),
    )

    # The sampled registry genuinely engaged — not a vacuous pass.
    registry = armed["world"].trace_registry()
    assert 0 < len(registry) < registry.offered

    assert armed["seen"] == plain["seen"]            # payload stream
    assert armed["rows"] == plain["rows"]            # DSOS contents
    assert armed["rows"]                             # ...and they exist
    assert armed["runtime_s"] == plain["runtime_s"]  # app timings
    assert armed["final_now"] == plain["final_now"]  # clock untouched
    assert armed["stats"] == plain["stats"]          # connector counters


def test_sampling_rate_never_changes_results():
    """Every retention policy sees the same campaign bytes."""
    keep_all = _campaign(True, telemetry=True)
    sampled = _campaign(
        True, telemetry=TelemetryConfig(head_sample_rate=0.1)
    )
    none_at_all = _campaign(True, telemetry=TelemetryConfig(
        head_sample_rate=0.0, exemplars=False,
    ))
    for other in (sampled, none_at_all):
        assert other["seen"] == keep_all["seen"]
        assert other["rows"] == keep_all["rows"]
        assert other["final_now"] == keep_all["final_now"]


# ------------------------------------------------------------ tail sampling


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_tail_sampling_retains_every_drop_and_recovery(fast):
    out = _campaign(
        fast,
        telemetry=TelemetryConfig(head_sample_rate=0.0),
        faults=_chaos_plan(),
    )
    collector = out["world"].telemetry
    registry = out["world"].trace_registry()

    from repro.telemetry.trace import RECOVERY_OUTCOMES

    must_keep = {
        t.trace_id
        for t in collector.traces.values()
        if t.status in ("dropped", "spilled")
        or any(h.outcome in RECOVERY_OUTCOMES for h in t.hops)
    }
    assert must_keep  # the chaos plan really dropped/recovered traces
    # 100% of them retained despite head rate 0...
    assert must_keep <= set(registry.trees)
    # ...and nothing else slipped in.
    assert set(registry.trees) == must_keep
    assert registry.head_kept == 0
    assert registry.tail_kept == len(must_keep)


# ------------------------------------------------------------ exemplars


def test_exemplar_ids_resolve_into_the_registry():
    out = _campaign(True, telemetry=True, faults=_chaos_plan())
    registry = out["world"].trace_registry()
    hist = out["world"].telemetry.histograms[END_TO_END]
    assert hist.exemplars  # annotation happened
    for idx, trace_id in hist.exemplars.items():
        tree = registry.get(trace_id)
        assert tree is not None
        assert hist._bin_of(tree.end_to_end_s) == idx


def test_exemplars_respect_the_policy_flag():
    out = _campaign(
        True,
        telemetry=TelemetryConfig(exemplars=False),
        faults=_chaos_plan(),
    )
    out["world"].trace_registry()
    hist = out["world"].telemetry.histograms[END_TO_END]
    assert hist.exemplars == {}
