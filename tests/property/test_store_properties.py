"""Replicated-store property pins.

Two standing guarantees from the replication issue:

* **Legacy purity** — ``dsos_shards=1, dsos_replication=1`` (the
  default) is *byte-identical* to the pre-replication store on all
  three lanes: same connector stats, same rows, same simulated clock,
  same telemetry.  Passing the topology knobs explicitly at their
  defaults must change nothing.
* **Deterministic convergence** — the crash drill replays
  bit-identically from one seed, the columnar lane matches the fast
  lane under the drill, and arbitrary crash/recover/write interleavings
  converge once every replica is recovered and repaired: zero
  under-replication always, a complete census whenever no WAL tail
  tore (a torn tail may destroy an object whose *every* acking
  replica's copy was in the tear — the un-fsynced-ack gap — but never
  leaves a partial one).

Plus a Hypothesis pin on the WAL discipline itself: whatever tail a
torn write loses, recovery yields an exact prefix of what was appended
and never resurrects bytes past the tear.
"""

import dataclasses

from hypothesis import given, settings, strategies as st

from repro.apps import Hmmer, MpiIoTest
from repro.core import ConnectorConfig
from repro.dsos import Attr, DsosCluster, Schema
from repro.dsos.journal import StoreWal
from repro.experiments import World, WorldConfig, run_job
from repro.faults import FaultPlan, StoreCrash
from repro.ldms.resilience import RetryPolicy


# ------------------------------------------------- legacy purity pin


def _lane_campaign(lane, **dsos_kw):
    fast = lane != "slow"
    columnar = lane == "columnar"
    world = World(WorldConfig(
        seed=424, quiet=True, n_compute_nodes=2, telemetry=True,
        fast_lane=fast, columnar=columnar, **dsos_kw,
    ))
    app = Hmmer(ranks_per_node=4, n_families=30)
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(fast_lane=fast, columnar=columnar),
    )
    t = world.telemetry
    return {
        "stats": dataclasses.asdict(result.connector.stats),
        "rows": [dict(obj) for obj in world.query_job(result.job_id)],
        "runtime": result.runtime_s,
        "now": world.env.now,
        "hists": {k: v.__dict__.copy() for k, v in t.histograms.items()},
        "hops": {
            tid: [(h.stage, h.node, h.t_in, h.t_out, h.outcome)
                  for h in tr.hops]
            for tid, tr in t.traces.items()
        },
    }


def test_default_topology_knobs_change_nothing_on_any_lane():
    explicit = dict(
        dsos_shards=1, dsos_replication=1, dsos_write_quorum=None,
        dsos_repair=True,
    )
    for lane in ("slow", "fast", "columnar"):
        baseline = _lane_campaign(lane)
        knobbed = _lane_campaign(lane, **explicit)
        assert knobbed == baseline, lane
        assert len(baseline["rows"]) > 0


# ------------------------------------------- drill determinism pins


_DRILL = FaultPlan((
    StoreCrash(0, at=0.15, down_for=0.3, tear_tail=True),
    StoreCrash(3, at=0.25, down_for=0.25),
))


def _drill_campaign(*, seed, columnar=False):
    world = World(WorldConfig(
        seed=seed, quiet=True, n_compute_nodes=4, telemetry=True,
        fast_lane=True, columnar=columnar, faults=_DRILL,
        retry=RetryPolicy(), standby_l1=True,
        dsos_shards=2, dsos_replication=2, dsos_write_quorum=2,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=8, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(
        world, app, "nfs",
        connector_config=ConnectorConfig(
            spill=True, fast_lane=True, columnar=columnar),
        inter_job_gap_s=0.0,
    )
    return world, result


def test_same_seed_drill_replays_bit_identically():
    world_a, result_a = _drill_campaign(seed=99)
    world_b, result_b = _drill_campaign(seed=99)
    assert result_a.health.to_dict() == result_b.health.to_dict()
    assert [dataclasses.astuple(f) for f in world_a.fault_injector.applied] \
        == [dataclasses.astuple(f) for f in world_b.fault_injector.applied]
    assert (world_a.dsos.cluster.stats_snapshot()
            == world_b.dsos.cluster.stats_snapshot())


def test_columnar_drill_matches_fast_lane():
    world_fast, result_fast = _drill_campaign(seed=5)
    world_col, result_col = _drill_campaign(seed=5, columnar=True)
    # A sharded cluster never arms the express spine (quorum acks are
    # not virtualizable), so the columnar lane is the fast lane here.
    assert world_col.spine is None or not world_col.spine.armed
    assert result_col.health.to_dict() == result_fast.health.to_dict()
    assert result_col.health.verify()
    assert (world_col.dsos.cluster.stats_snapshot()
            == world_fast.dsos.cluster.stats_snapshot())
    assert world_col.dsos.cluster.census().complete


# ------------------------------------------------ WAL tear property


@given(
    n_records=st.integers(min_value=1, max_value=12),
    tear=st.integers(min_value=1, max_value=400),
)
@settings(max_examples=80, deadline=None)
def test_torn_wal_always_recovers_an_exact_prefix(n_records, tear):
    wal = StoreWal()
    for seq in range(n_records):
        wal.append(seq, "events",
                   {"seq": seq, "op": "write", "ts": 0.25 * seq},
                   trace_id=f"1:0:{seq}")
    reference = bytes(wal._buf)
    wal.tear_tail(min(tear, len(reference)))
    recovery = wal.recover()
    # Recovered entries are a strict prefix of what was appended...
    assert [r.seq for r in recovery.entries] == list(
        range(len(recovery.entries))
    )
    for record in recovery.entries:
        assert record.valid
        assert record.obj["seq"] == record.seq
    # ...and the surviving buffer is exactly those records' bytes — no
    # untrusted tail survives recovery.
    replayed = b"".join(r.encode() for r in recovery.entries)
    assert bytes(wal._buf) == replayed
    assert reference.startswith(replayed)


# --------------------------------- census convergence under chaos ops


def _mini_cluster():
    schema = Schema(
        "events",
        [Attr("job_id", "int"), Attr("timestamp", "float")],
        {"job_time": ("job_id", "timestamp")},
    )
    c = DsosCluster("mini", shards=2, replication=2)
    c.attach_schema(schema)
    return c


@given(
    ops=st.lists(
        st.one_of(
            st.tuples(st.just("write"), st.integers(0, 7)),
            st.tuples(st.just("crash"), st.integers(0, 3)),
            st.tuples(st.just("crash_torn"), st.integers(0, 3)),
            st.tuples(st.just("recover"), st.integers(0, 3)),
        ),
        min_size=1, max_size=40,
    ),
)
@settings(max_examples=60, deadline=None)
def test_census_converges_after_any_interleaving(ops):
    c = _mini_cluster()
    accepted = 0
    torn = False
    t = 0
    for op, arg in ops:
        if op == "write":
            t += 1
            ack = c.insert_replicated(
                "events", {"job_id": arg, "timestamp": float(t)}
            )
            accepted += 1 if ack.accepted else 0
        elif op in ("crash", "crash_torn"):
            d = c.daemons[arg]
            if d.alive:
                torn = torn or op == "crash_torn"
                c.crash_daemon(d, tear_tail=(op == "crash_torn"),
                               tear_bytes=11)
        elif op == "recover":
            d = c.daemons[arg]
            if not d.alive:
                c.recover_daemon(d)
    # Convergence: recover everything still down, then one repair pass.
    for d in c.daemons:
        if not d.alive:
            c.recover_daemon(d)
    c.repair_all()
    census = c.census()
    assert census.replicas_down == 0
    # Repair eliminates *under*-replication unconditionally: whatever
    # survives anywhere is pulled back to R copies everywhere.
    assert census.under_replicated == 0, census
    # Clean crashes lose nothing — the WAL replays in full.  Only a
    # torn tail may destroy an object outright (every acking replica's
    # copy torn away before any peer held it — the un-fsynced-ack gap).
    if not torn:
        assert census.complete, census
        assert census.lost == 0
    assert census.objects == accepted
    assert c.count("events") == census.objects - census.lost
    # Replica invariant, spelled out: every object is either fully
    # replicated (R live copies) or gone entirely — never in between.
    zero_copy = 0
    for shard in range(c.shards):
        for seq, copies in c._copies[shard].items():
            assert copies in (0, c.replication), (shard, seq, copies)
            zero_copy += 1 if copies == 0 else 0
    assert zero_copy == census.lost
