"""Unit tests for the DES event loop and event primitives."""

import pytest

from repro.sim import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    SimulationError,
    Timeout,
)
from repro.sim.events import EventError


def test_clock_starts_at_initial_time():
    env = Environment(initial_time=1000.0)
    assert env.now == 1000.0


def test_timeout_advances_clock():
    env = Environment()

    def proc():
        yield env.timeout(5.0)
        return env.now

    p = env.process(proc())
    assert env.run(p) == 5.0
    assert env.now == 5.0


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-1.0)


def test_timeout_carries_value():
    env = Environment()

    def proc():
        got = yield env.timeout(1.0, value="payload")
        return got

    assert env.run(env.process(proc())) == "payload"


def test_events_at_same_time_fire_fifo():
    env = Environment()
    order = []

    def make(name):
        def proc():
            yield env.timeout(1.0)
            order.append(name)

        return proc

    for name in ("a", "b", "c"):
        env.process(make(name)())
    env.run()
    assert order == ["a", "b", "c"]


def test_run_until_time_stops_clock_exactly():
    env = Environment()

    def ticker():
        while True:
            yield env.timeout(1.0)

    env.process(ticker())
    env.run(until=3.5)
    assert env.now == 3.5


def test_run_until_past_raises():
    env = Environment(initial_time=10.0)
    with pytest.raises(SimulationError):
        env.run(until=5.0)


def test_step_with_empty_queue_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        env.step()


def test_event_double_trigger_raises():
    env = Environment()
    ev = env.event()
    ev.succeed(1)
    with pytest.raises(EventError):
        ev.succeed(2)
    with pytest.raises(EventError):
        ev.fail(RuntimeError("nope"))


def test_event_value_before_trigger_raises():
    env = Environment()
    with pytest.raises(EventError):
        _ = env.event().value


def test_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_process_return_value_propagates():
    env = Environment()

    def child():
        yield env.timeout(2.0)
        return 42

    def parent():
        value = yield env.process(child())
        return value + 1

    assert env.run(env.process(parent())) == 43


def test_process_exception_propagates_to_waiter():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("boom")

    def parent():
        try:
            yield env.process(child())
        except ValueError as exc:
            return str(exc)

    assert env.run(env.process(parent())) == "boom"


def test_unhandled_process_failure_raises_from_run():
    env = Environment()

    def child():
        yield env.timeout(1.0)
        raise ValueError("unattended")

    env.process(child())
    with pytest.raises(ValueError, match="unattended"):
        env.run()


def test_yield_non_event_fails_process():
    env = Environment()

    def bad():
        yield 17  # type: ignore[misc]

    p = env.process(bad())
    with pytest.raises(TypeError):
        env.run(p)


def test_process_body_must_be_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_all_of_waits_for_slowest():
    env = Environment()

    def proc():
        result = yield env.all_of([env.timeout(1, "x"), env.timeout(5, "y")])
        return (env.now, result)

    when, result = env.run(env.process(proc()))
    assert when == 5
    assert result == {0: "x", 1: "y"}


def test_any_of_fires_on_fastest():
    env = Environment()

    def proc():
        result = yield env.any_of([env.timeout(3, "slow"), env.timeout(1, "fast")])
        return (env.now, result)

    when, result = env.run(env.process(proc()))
    assert when == 1
    assert result[1] == "fast"
    assert 0 not in result


def test_any_of_empty_fires_immediately():
    env = Environment()

    def proc():
        yield env.any_of([])
        return env.now

    assert env.run(env.process(proc())) == 0


def test_all_of_with_already_processed_event():
    env = Environment()

    def proc():
        t = env.timeout(1)
        yield t
        # t is processed; AllOf over it must still fire.
        yield env.all_of([t, env.timeout(2)])
        return env.now

    assert env.run(env.process(proc())) == 3


def test_all_of_propagates_child_failure():
    env = Environment()

    def failer():
        yield env.timeout(1)
        raise RuntimeError("child failed")

    def proc():
        try:
            yield env.all_of([env.process(failer()), env.timeout(10)])
        except RuntimeError as exc:
            return str(exc)

    assert env.run(env.process(proc())) == "child failed"


def test_condition_rejects_foreign_events():
    env_a, env_b = Environment(), Environment()
    with pytest.raises(ValueError):
        AllOf(env_a, [Timeout(env_b, 1.0)])


def test_interrupt_delivers_cause():
    env = Environment()

    def victim():
        try:
            yield env.timeout(100)
        except Interrupt as intr:
            return ("interrupted", intr.cause, env.now)

    def attacker(proc):
        yield env.timeout(2)
        proc.interrupt(cause="preempt")

    v = env.process(victim())
    env.process(attacker(v))
    assert env.run(v) == ("interrupted", "preempt", 2)


def test_interrupt_dead_process_raises():
    env = Environment()

    def quick():
        yield env.timeout(1)

    p = env.process(quick())
    env.run(p)
    with pytest.raises(RuntimeError):
        p.interrupt()


def test_self_interrupt_raises():
    env = Environment()
    caught = []

    def selfish():
        me = env.active_process
        try:
            me.interrupt()
        except RuntimeError as exc:
            caught.append(exc)
        yield env.timeout(1)

    env.run(env.process(selfish()))
    assert caught


def test_run_until_event_returns_value():
    env = Environment()
    ev = env.event()

    def setter():
        yield env.timeout(4)
        ev.succeed("ready")

    env.process(setter())
    assert env.run(until=ev) == "ready"
    assert env.now == 4


def test_run_until_event_never_triggered_raises():
    env = Environment()
    ev = env.event()
    with pytest.raises(SimulationError):
        env.run(until=ev)


def test_peek_reports_next_event_time():
    env = Environment()
    env.timeout(7.0)
    assert env.peek() == 7.0
    env2 = Environment()
    assert env2.peek() == float("inf")


def test_interleaved_processes_deterministic():
    env = Environment()
    trace = []

    def worker(name, period):
        for _ in range(3):
            yield env.timeout(period)
            trace.append((env.now, name))

    env.process(worker("a", 2))
    env.process(worker("b", 3))
    env.run()
    # At t=6 both workers fire; b's timeout was *scheduled* earlier
    # (at t=3 vs t=4), so FIFO tie-breaking resumes b first.
    assert trace == [
        (2, "a"),
        (3, "b"),
        (4, "a"),
        (6, "b"),
        (6, "a"),
        (9, "b"),
    ]
