"""Interrupt-safety of the contention primitives.

A process interrupted while holding or waiting for a resource must not
leak slots or wedge the queue — otherwise a cancelled job would corrupt
the simulated file systems for everyone after it.
"""

import pytest

from repro.sim import Environment, Interrupt, Resource


def test_interrupt_while_holding_releases_via_finally():
    env = Environment()
    res = Resource(env, capacity=1)
    log = []

    def holder():
        try:
            yield from res.use(100.0)  # use() releases in its finally
        except Interrupt:
            log.append(("interrupted", env.now))

    def successor():
        yield env.timeout(1.0)
        yield from res.use(2.0)
        log.append(("done", env.now))

    h = env.process(holder())
    env.process(successor())

    def assassin():
        yield env.timeout(5.0)
        h.interrupt()

    env.process(assassin())
    env.run()
    assert ("interrupted", 5.0) in log
    # The successor got the slot right after the interrupt, not at 100s.
    assert ("done", 7.0) in log
    assert res.count == 0


def test_interrupt_while_queued_backs_out_cleanly():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def holder():
        yield from res.use(10.0)
        order.append("holder-done")

    def waiter(name):
        req = res.request()
        try:
            yield req
            yield env.timeout(1.0)
            order.append(name)
        except Interrupt:
            res.release(req)  # cancel the queued request
            order.append(f"{name}-cancelled")
            return
        res.release(req)

    env.process(holder())
    w1 = env.process(waiter("w1"))
    env.process(waiter("w2"))

    def assassin():
        yield env.timeout(2.0)
        w1.interrupt()

    env.process(assassin())
    env.run()
    assert "w1-cancelled" in order
    # w2 still gets served after the holder finishes.
    assert "w2" in order
    assert res.count == 0
    assert res.queue_length == 0


def test_interrupted_rank_does_not_wedge_filesystem():
    """Kill one writer mid-operation; others proceed normally."""
    from repro.fs import LoadProcess, NFSFileSystem, NFSParams
    from repro.sim import RngRegistry

    env = Environment()
    reg = RngRegistry(3)
    quiet = LoadProcess(
        reg.stream("l"), diurnal_amplitude=0, noise_sigma=0, n_modes=0,
        incident_rate=0,
    )
    fs = NFSFileSystem(env, quiet, reg.stream("f"), NFSParams(cv=0.0))
    finished = []

    def writer(name):
        try:
            h, _ = yield from fs.open(f"/{name}", "n", "w")
            yield from fs.write(h, 64 * 2**20)
            yield from fs.close(h)
            finished.append(name)
        except Interrupt:
            pass

    victim = env.process(writer("victim"))
    env.process(writer("survivor"))

    def assassin():
        yield env.timeout(0.05)
        if victim.is_alive:
            victim.interrupt()

    env.process(assassin())
    env.run()
    assert "survivor" in finished
    assert "victim" not in finished
