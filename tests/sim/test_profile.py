"""The sim-time profiler: exact attribution, by construction."""

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.sim import PipelineProfile
from repro.telemetry.trace import HopRecord, MessageTrace


def _trace(trace_id, t_begin, hops):
    t = MessageTrace(trace_id=trace_id, job_id=1, rank=0, t_begin=t_begin)
    t.hops = [HopRecord(*h) for h in hops]
    return t


def test_synthetic_traces_attribute_exactly():
    # One stored message: publish 0.1s, forward 0.3s, ingest 0.05s,
    # stored at t=1.0 -> e2e 1.0, residual 0.55.
    stored = _trace("1:0:0", 0.0, [
        ("publish", "nid1", 0.0, 0.1, "published"),
        ("forward", "nid1", 0.1, 0.4, "forwarded"),
        ("ingest", "head", 0.95, 1.0, "stored"),
    ])
    dropped = _trace("1:0:1", 0.0, [
        ("publish", "nid1", 0.0, 0.1, "published"),
        ("forward", "nid1", 0.1, 0.2, "drop_overflow"),
    ])
    profile = PipelineProfile.from_traces([stored, dropped])
    assert profile.messages == 1
    assert profile.unstored == 1
    assert profile.end_to_end_s == pytest.approx(1.0)
    assert profile.components["publish"].sim_seconds == pytest.approx(0.1)
    assert profile.components["forward"].sim_seconds == pytest.approx(0.3)
    assert profile.components["ingest"].sim_seconds == pytest.approx(0.05)
    assert profile.components["unattributed"].sim_seconds == pytest.approx(0.55)
    assert profile.reconciles()


def test_negative_residual_still_reconciles():
    # Overlapping recovery hops can attribute more than the e2e span;
    # the residual goes negative and the books still balance.
    t = _trace("1:0:0", 0.0, [
        ("forward", "nid1", 0.0, 0.8, "forwarded"),
        ("forward", "nid1", 0.0, 0.8, "redelivered"),
        ("ingest", "head", 0.9, 1.0, "stored"),
    ])
    profile = PipelineProfile.from_traces([t])
    assert profile.components["unattributed"].sim_seconds < 0
    assert profile.reconciles()


def test_rows_are_pipeline_ordered():
    t = _trace("1:0:0", 0.0, [
        ("ingest", "head", 0.9, 1.0, "stored"),
        ("publish", "nid1", 0.0, 0.1, "published"),
    ])
    rows = PipelineProfile.from_traces([t]).rows()
    stages = [r["stage"] for r in rows]
    assert stages == ["publish", "ingest", "unattributed"]
    assert sum(r["share"] for r in rows) == pytest.approx(1.0)


def test_empty_profile_renders_and_reconciles():
    profile = PipelineProfile.from_traces([])
    assert profile.reconciles()
    assert "messages=0" in profile.render_text()
    assert profile.to_dict()["reconciles"] is True


@pytest.mark.parametrize("fast", [True, False], ids=["fast-lane", "reference"])
def test_campaign_profile_reconciles_with_hop_traces(fast):
    """The acceptance criterion: ``repro profile`` totals re-sum to the
    end-to-end latency measured by the hop traces, exactly."""
    world = World(WorldConfig(
        seed=7, quiet=True, n_compute_nodes=4, telemetry=True, fast_lane=fast,
    ))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=4, iterations=4, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    run_job(world, app, "nfs", connector_config=ConnectorConfig())
    profile = PipelineProfile.from_collector(world.telemetry)
    assert profile.messages > 0
    assert profile.reconciles()
    # Cross-check against the end-to-end histogram total.
    from repro.telemetry.collector import END_TO_END

    e2e = world.telemetry.histograms[END_TO_END]
    assert profile.end_to_end_s == pytest.approx(e2e.total, rel=1e-9)
    assert profile.messages == e2e.count
    text = profile.render_text()
    assert "EXACT" in text
