"""Unit tests for Resource / Store / Container contention primitives."""

import pytest

from repro.sim import Container, Environment, Resource, Store


# ---------------------------------------------------------------- Resource


def test_resource_serializes_on_capacity_one():
    env = Environment()
    res = Resource(env, capacity=1)
    done = []

    def user(name):
        yield from res.use(3.0)
        done.append((env.now, name))

    env.process(user("a"))
    env.process(user("b"))
    env.run()
    assert done == [(3.0, "a"), (6.0, "b")]


def test_resource_parallel_up_to_capacity():
    env = Environment()
    res = Resource(env, capacity=2)
    done = []

    def user(name):
        yield from res.use(3.0)
        done.append((env.now, name))

    for name in "abc":
        env.process(user(name))
    env.run()
    assert done == [(3.0, "a"), (3.0, "b"), (6.0, "c")]


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    grants = []

    def user(name, arrive):
        yield env.timeout(arrive)
        req = res.request()
        yield req
        grants.append(name)
        yield env.timeout(1.0)
        res.release(req)

    env.process(user("late", 0.2))
    env.process(user("early", 0.1))
    env.run()
    assert grants == ["early", "late"]


def test_resource_counts_and_queue_length():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        assert res.count == 1
        yield env.timeout(5)
        res.release(req)

    def waiter():
        yield env.timeout(1)
        req = res.request()
        assert res.queue_length == 1
        yield req
        res.release(req)

    env.process(holder())
    env.process(waiter())
    env.run()
    assert res.count == 0
    assert res.queue_length == 0


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)


def test_resource_release_cancels_queued_request():
    env = Environment()
    res = Resource(env, capacity=1)

    def holder():
        req = res.request()
        yield req
        yield env.timeout(10)
        res.release(req)

    def canceller():
        yield env.timeout(1)
        req = res.request()  # queued behind holder
        res.release(req)  # back out without waiting
        assert res.queue_length == 0

    env.process(holder())
    env.process(canceller())
    env.run()


def test_resource_release_unknown_request_raises():
    env = Environment()
    res = Resource(env, capacity=1)
    other = Resource(env, capacity=1)

    def proc():
        req = other.request()
        yield req
        with pytest.raises(RuntimeError):
            res.release(req)
        other.release(req)

    env.run(env.process(proc()))


def test_request_context_manager_releases():
    env = Environment()
    res = Resource(env, capacity=1)
    times = []

    def user():
        with res.request() as req:
            yield req
            yield env.timeout(2)
        times.append(env.now)

    env.process(user())
    env.process(user())
    env.run()
    assert times == [2, 4]


# ------------------------------------------------------------------- Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put("x")
        item = yield store.get()
        return item

    assert env.run(env.process(proc())) == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    result = []

    def consumer():
        item = yield store.get()
        result.append((env.now, item))

    def producer():
        yield env.timeout(5)
        yield store.put("late-item")

    env.process(consumer())
    env.process(producer())
    env.run()
    assert result == [(5, "late-item")]


def test_store_fifo_item_order():
    env = Environment()
    store = Store(env)
    got = []

    def producer():
        for i in range(3):
            yield store.put(i)

    def consumer():
        for _ in range(3):
            item = yield store.get()
            got.append(item)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert got == [0, 1, 2]


def test_store_bounded_capacity_blocks_putter():
    env = Environment()
    store = Store(env, capacity=1)
    times = []

    def producer():
        yield store.put("a")
        t0 = env.now
        yield store.put("b")  # blocks until consumer frees a slot
        times.append((t0, env.now))

    def consumer():
        yield env.timeout(4)
        yield store.get()

    env.process(producer())
    env.process(consumer())
    env.run()
    assert times == [(0, 4)]


def test_store_try_get_nonblocking():
    env = Environment()
    store = Store(env)
    assert store.try_get() is None

    def proc():
        yield store.put("v")

    env.process(proc())
    env.run()
    assert store.try_get() == "v"
    assert store.try_get() is None


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_store_len():
    env = Environment()
    store = Store(env)

    def proc():
        yield store.put(1)
        yield store.put(2)

    env.process(proc())
    env.run()
    assert len(store) == 2


# --------------------------------------------------------------- Container


def test_container_get_blocks_until_level():
    env = Environment()
    tank = Container(env, capacity=100, init=0)
    events = []

    def consumer():
        yield tank.get(10)
        events.append(("got", env.now))

    def producer():
        yield env.timeout(3)
        yield tank.put(10)

    env.process(consumer())
    env.process(producer())
    env.run()
    assert events == [("got", 3)]
    assert tank.level == 0


def test_container_put_blocks_at_capacity():
    env = Environment()
    tank = Container(env, capacity=10, init=10)
    events = []

    def producer():
        yield tank.put(5)
        events.append(("put", env.now))

    def consumer():
        yield env.timeout(2)
        yield tank.get(5)

    env.process(producer())
    env.process(consumer())
    env.run()
    assert events == [("put", 2)]
    assert tank.level == 10


def test_container_validation():
    env = Environment()
    with pytest.raises(ValueError):
        Container(env, capacity=0)
    with pytest.raises(ValueError):
        Container(env, capacity=5, init=6)
    tank = Container(env, capacity=5)
    with pytest.raises(ValueError):
        tank.put(0)
    with pytest.raises(ValueError):
        tank.get(-1)
