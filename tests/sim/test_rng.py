"""Tests for reproducible named RNG streams and distribution helpers."""

import numpy as np
import pytest

from repro.sim import Distributions, RngRegistry


def test_same_seed_same_name_reproduces():
    a = RngRegistry(42).stream("fs.nfs")
    b = RngRegistry(42).stream("fs.nfs")
    assert np.array_equal(a.random(10), b.random(10))


def test_different_names_are_independent():
    reg = RngRegistry(42)
    a = reg.stream("alpha").random(10)
    b = reg.stream("beta").random(10)
    assert not np.array_equal(a, b)


def test_stream_is_cached_and_advances():
    reg = RngRegistry(7)
    first = reg.stream("x").random()
    second = reg.stream("x").random()
    assert first != second  # same generator object, draws advance


def test_adding_stream_does_not_perturb_existing():
    reg1 = RngRegistry(11)
    seq_before = reg1.stream("a").random(5)

    reg2 = RngRegistry(11)
    reg2.stream("brand-new")  # extra stream created first
    seq_after = reg2.stream("a").random(5)
    assert np.array_equal(seq_before, seq_after)


def test_fork_changes_streams():
    parent = RngRegistry(42)
    child = parent.fork("job-1")
    assert child.root_seed != parent.root_seed
    assert not np.array_equal(
        parent.stream("v").random(5), child.stream("v").random(5)
    )


def test_fork_deterministic():
    assert RngRegistry(42).fork("job-1").root_seed == RngRegistry(42).fork("job-1").root_seed
    assert RngRegistry(42).fork("job-1").root_seed != RngRegistry(42).fork("job-2").root_seed


def test_seed_must_be_int():
    with pytest.raises(TypeError):
        RngRegistry("42")  # type: ignore[arg-type]


def test_lognormal_mean_and_cv():
    rng = np.random.default_rng(0)
    draws = np.array(
        [Distributions.lognormal(rng, mean=2.0, cv=0.5) for _ in range(20000)]
    )
    assert draws.mean() == pytest.approx(2.0, rel=0.05)
    assert draws.std() / draws.mean() == pytest.approx(0.5, rel=0.1)
    assert (draws > 0).all()


def test_lognormal_zero_cv_is_deterministic():
    rng = np.random.default_rng(0)
    assert Distributions.lognormal(rng, mean=3.0, cv=0.0) == 3.0


def test_lognormal_array_matches_scalar_params():
    rng = np.random.default_rng(0)
    arr = Distributions.lognormal_array(rng, mean=1.5, cv=0.3, size=20000)
    assert arr.shape == (20000,)
    assert arr.mean() == pytest.approx(1.5, rel=0.05)


def test_lognormal_rejects_nonpositive_mean():
    rng = np.random.default_rng(0)
    with pytest.raises(ValueError):
        Distributions.lognormal(rng, mean=0.0, cv=1.0)
    with pytest.raises(ValueError):
        Distributions.lognormal_array(rng, mean=-1.0, cv=1.0, size=3)


def test_exponential_mean():
    rng = np.random.default_rng(1)
    draws = np.array([Distributions.exponential(rng, 4.0) for _ in range(20000)])
    assert draws.mean() == pytest.approx(4.0, rel=0.05)
    with pytest.raises(ValueError):
        Distributions.exponential(rng, 0.0)


def test_pareto_bounded_in_range():
    rng = np.random.default_rng(2)
    draws = [
        Distributions.pareto_bounded(rng, minimum=1.0, alpha=1.5, cap=50.0)
        for _ in range(5000)
    ]
    assert min(draws) >= 1.0
    assert max(draws) <= 50.0
    with pytest.raises(ValueError):
        Distributions.pareto_bounded(rng, minimum=0.0, alpha=1.0, cap=1.0)


def test_truncated_normal_in_bounds():
    rng = np.random.default_rng(3)
    draws = [
        Distributions.truncated_normal(rng, mean=0.0, std=5.0, low=-1.0, high=1.0)
        for _ in range(1000)
    ]
    assert all(-1.0 <= d <= 1.0 for d in draws)
    with pytest.raises(ValueError):
        Distributions.truncated_normal(rng, 0, 1, low=1.0, high=0.0)
