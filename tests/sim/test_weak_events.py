"""Weak events: scheduled work that never keeps the simulation alive.

The diagnosis engine's periodic ticks are weak timeouts — they run
whenever strong work is still pending, but an event queue holding only
weak events counts as drained: ``run()`` returns, the clock never
advances into a weak-only tail, and a numeric horizon is only reached
when a strong event lies beyond it.
"""

import pytest

from repro.sim import Environment


def _ticker(env, period, log, weak=True):
    while True:
        yield env.timeout(period, weak=weak)
        log.append(env.now)


def test_weak_only_queue_counts_as_drained():
    env = Environment()
    log = []
    env.process(_ticker(env, 1.0, log))
    env.run()
    assert log == []
    assert env.now == 0.0  # the clock never moved


def test_weak_ticks_run_while_strong_work_is_pending():
    env = Environment()
    log = []
    env.process(_ticker(env, 1.0, log))

    def work():
        yield env.timeout(3.5)

    env.run(env.process(work()))
    assert log == [1.0, 2.0, 3.0]
    assert env.now == 3.5


def test_run_until_event_stops_with_weak_tail():
    env = Environment()
    log = []
    env.process(_ticker(env, 0.5, log))

    def work():
        yield env.timeout(1.2)

    done = env.process(work())
    env.run(done)
    # Ticks at 0.5 and 1.0 ran; the pending 1.5 tick did not drag the
    # run past the strong event at 1.2.
    assert log == [0.5, 1.0]
    assert env.now == 1.2


def test_numeric_horizon_ignores_weak_only_queue():
    env = Environment()
    log = []
    env.process(_ticker(env, 1.0, log))
    env.run(until=10.0)
    # No strong event beyond the horizon: the queue drains (weakly)
    # and the clock stays where the last strong event left it.
    assert log == []
    assert env.now == 0.0


def test_numeric_horizon_with_strong_work():
    env = Environment()
    log = []
    env.process(_ticker(env, 1.0, log))

    def work():
        yield env.timeout(2.5)
        yield env.timeout(2.5)  # strong event at 5.0, past the horizon

    env.process(work())
    env.run(until=4.0)
    assert env.now == 4.0
    # Ticks up to and including the horizon ran (strong work at 5.0
    # keeps the sim alive); the pending 5.0 tick was not processed.
    assert log == [1.0, 2.0, 3.0, 4.0]


def test_weak_and_strong_interleaving_preserves_strong_order():
    env = Environment()
    order = []

    def strong(name, t):
        yield env.timeout(t)
        order.append((name, env.now))

    env.process(strong("a", 1.0))
    env.process(_ticker(env, 0.3, []))
    env.process(strong("b", 2.0))
    env.run()
    assert order == [("a", 1.0), ("b", 2.0)]


def test_schedule_rejects_weakness_confusion():
    env = Environment()
    # Plain timeouts default to strong: they do keep the run alive.
    def work():
        yield env.timeout(1.0)

    env.process(work())
    env.run()
    assert env.now == 1.0


def test_timeout_at_is_strong():
    env = Environment(initial_time=100.0)
    fired = []
    ev = env.timeout_at(105.0, value="x")
    ev.callbacks.append(lambda e: fired.append(env.now))
    env.run()
    assert fired == [105.0]
    assert env.now == 105.0


def test_weak_events_still_execute_their_callbacks():
    env = Environment()
    fired = []
    ev = env.timeout(1.0, value="weakling", weak=True)
    ev.callbacks.append(lambda e: fired.append(e.value))

    def work():
        yield env.timeout(2.0)

    env.run(env.process(work()))
    assert fired == ["weakling"]


@pytest.mark.parametrize("n_weak", [1, 5, 50])
def test_many_weak_tickers_never_extend_the_run(n_weak):
    env = Environment()
    logs = [[] for _ in range(n_weak)]
    for log in logs:
        env.process(_ticker(env, 0.25, log))

    def work():
        yield env.timeout(1.0)

    env.run(env.process(work()))
    assert env.now == 1.0
    for log in logs:
        assert log == [0.25, 0.5, 0.75, 1.0]


# ------------------------------------------------------ Environment.every


def test_every_calls_fn_at_each_period():
    env = Environment()
    ticks = []
    env.every(1.0, lambda: ticks.append(env.now))

    def work():
        yield env.timeout(3.5)

    env.run(env.process(work()))
    assert ticks == [1.0, 2.0, 3.0]


def test_every_weak_never_extends_the_run():
    env = Environment()
    ticks = []
    env.every(0.5, lambda: ticks.append(env.now), weak=True)
    env.run()
    # A weak-only queue counts as drained: no tick ever ran.
    assert ticks == [] and env.now == 0.0

    def work():
        yield env.timeout(1.2)

    env.run(env.process(work()))
    assert ticks == [0.5, 1.0]
    assert env.now == 1.2


def test_every_strong_keeps_the_clock_alive_to_a_horizon():
    env = Environment()
    ticks = []
    env.every(1.0, lambda: ticks.append(env.now))
    env.run(until=3.0)
    assert ticks == [1.0, 2.0, 3.0]


def test_every_rejects_nonpositive_period():
    env = Environment()
    with pytest.raises(ValueError):
        env.every(0.0, lambda: None)
    with pytest.raises(ValueError):
        env.every(-1.0, lambda: None, weak=True)
