"""Every drop site in the pipeline must attribute losses to the right
(stage, node, outcome) triple — the ledger the reconciliation invariant
is built from."""

import pytest

from repro.cluster import Cluster, ClusterSpec
from repro.ldms import Ldmsd
from repro.sim import Environment, RngRegistry
from repro.telemetry import (
    DROP_DAEMON_FAILED,
    DROP_NO_SUBSCRIBER,
    DROP_OVERFLOW,
    install,
    make_trace_id,
)

TAG = "darshanConnector"


@pytest.fixture
def env():
    return Environment()


@pytest.fixture
def cluster(env):
    return Cluster(env, RngRegistry(4), ClusterSpec(n_compute_nodes=3))


def test_no_subscriber_drop_attributed_to_bus_stage(env, cluster):
    collector = install(env)
    node = cluster.compute_nodes[0]
    d = Ldmsd(env, node, cluster.network)
    tid = make_trace_id(1, 0, 0)
    collector.begin(tid, 1, 0, node.name)
    env.run(env.process(d.publish(TAG, {"k": 1}, trace_id=tid)))

    trace = collector.traces[tid]
    assert trace.status == "dropped"
    assert trace.drop_site == ("bus", node.name, DROP_NO_SUBSCRIBER)
    group = collector.reconcile()[(1, 0)]
    assert group["published"] == 1
    assert group["dropped"] == 1
    assert group["stored"] == 0
    assert group["in_flight"] == 0


def test_outbox_overflow_drop_attributed_to_forward_stage(env, cluster):
    collector = install(env)
    src_node = cluster.compute_nodes[0]
    src = Ldmsd(env, src_node, cluster.network, name="src")
    dst = Ldmsd(env, cluster.head_node, cluster.network, name="dst")
    src.add_stream_forward(TAG, dst, queue_depth=2)

    # Burst 10 messages in zero simulated time: the forwarder's drain
    # callback is scheduled behind the burst, so only queue_depth fit.
    n = 10
    ids = [make_trace_id(1, 0, seq) for seq in range(n)]
    for tid in ids:
        collector.begin(tid, 1, 0, src_node.name)
        src.publish_now(TAG, {"seq": tid}, trace_id=tid)
    env.run()

    dropped = [t for t in map(collector.traces.get, ids) if t.status == "dropped"]
    overflow_site = ("forward", src_node.name, DROP_OVERFLOW)
    overflowed = [t for t in dropped if t.drop_site == overflow_site]
    assert len(overflowed) == src.forward_stats()[0].dropped_overflow
    assert len(overflowed) == n - 2
    # The two that fit were forwarded, then dropped at dst's bus
    # (nobody subscribes there) — still fully accounted.
    delivered_site = ("bus", dst.node.name, DROP_NO_SUBSCRIBER)
    assert sum(1 for t in dropped if t.drop_site == delivered_site) == 2
    group = collector.reconcile()[(1, 0)]
    assert group["published"] == n
    assert group["dropped"] == n
    assert group["in_flight"] == 0


def test_mid_flight_daemon_failure_attributed_to_receive_stage(env, cluster):
    collector = install(env)
    src = Ldmsd(env, cluster.compute_nodes[0], cluster.network, name="src")
    dst = Ldmsd(env, cluster.head_node, cluster.network, name="dst")
    src.add_stream_forward(TAG, dst)
    dst.fail()

    tid = make_trace_id(1, 0, 0)
    collector.begin(tid, 1, 0, src.node.name)
    env.run(env.process(src.publish(TAG, {"k": 1}, trace_id=tid)))
    env.run()

    trace = collector.traces[tid]
    assert trace.status == "dropped"
    assert trace.drop_site == ("receive", "head", DROP_DAEMON_FAILED)
    assert dst.dropped_while_failed == 1
    # The forward hop itself succeeded before the receive drop.
    assert any(h.stage == "forward" and not h.is_drop for h in trace.hops)


def test_publish_into_failed_daemon_attributed_to_publish_stage(env, cluster):
    collector = install(env)
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
    d.fail()
    tid = make_trace_id(1, 0, 0)
    collector.begin(tid, 1, 0, d.node.name)
    env.run(env.process(d.publish(TAG, {"k": 1}, trace_id=tid)))

    trace = collector.traces[tid]
    assert trace.drop_site == ("publish", d.node.name, DROP_DAEMON_FAILED)
    assert d.dropped_while_failed == 1


def test_untraced_messages_leave_no_traces(env, cluster):
    collector = install(env)
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
    d.publish_now(TAG, {"k": 1})  # no trace_id
    env.run()
    assert collector.traces == {}
    assert collector.reconcile() == {}


def test_stats_snapshot_merges_bus_and_forward_counters(env, cluster):
    src = Ldmsd(env, cluster.compute_nodes[0], cluster.network, name="src")
    dst = Ldmsd(env, cluster.head_node, cluster.network, name="dst")
    src.add_stream_forward(TAG, dst, queue_depth=2)
    for _ in range(5):
        src.publish_now(TAG, {"k": 1})
    env.run()

    snap = src.stats_snapshot()
    assert snap["name"] == "src"
    assert snap["node"] == src.node.name
    assert snap["failed"] is False
    assert snap["bus"]["published"] == 5
    assert snap["bus"]["delivered"] == 5  # forwarder callback counts
    assert len(snap["forwards"]) == 1
    fwd = snap["forwards"][0]
    assert fwd["tag"] == TAG
    assert fwd["peer"] == "head/dst"  # node/daemon, unambiguous
    assert fwd["active_peer"] == "head/dst"
    assert fwd["enqueued"] == 2
    assert fwd["dropped_overflow"] == 3
    assert fwd["forwarded"] == 2
    assert fwd["queue_depth"] == 0  # drained
    assert fwd["max_queue_depth"] == 2
