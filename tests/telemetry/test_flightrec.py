"""Flight-recorder primitives: rings, bundles, the torn-tail log."""

import json

import pytest

from repro.telemetry.flightrec import (
    RECORDER_METRICS,
    STREAMS,
    BundleLog,
    FlightRecorderConfig,
    ForensicBundle,
    RingBuffer,
    canonical_json,
)


# ------------------------------------------------------------ RingBuffer


def test_ring_rejects_zero_capacity():
    with pytest.raises(ValueError):
        RingBuffer("x", 0)


def test_ring_eviction_keeps_exact_ledger():
    ring = RingBuffer("spans", capacity=3)
    for i in range(10):
        ring.append(float(i), {"event": "e", "i": i})
    assert ring.captured == 10
    assert ring.retained == 3
    assert ring.evicted == 7
    assert ring.reconciles()
    # FIFO: the oldest records went first.
    assert [r["i"] for _, r in ring.all()] == [7, 8, 9]


def test_ring_reconciles_at_every_instant():
    ring = RingBuffer("alerts", capacity=2)
    for i in range(5):
        ring.append(float(i), {"i": i})
        assert ring.reconciles()
        assert ring.captured == ring.retained + ring.evicted


def test_ring_window_is_inclusive_both_ends():
    ring = RingBuffer("faults", capacity=16)
    for t in (0.0, 1.0, 2.0, 3.0):
        ring.append(t, {"t_copy": t})
    got = [t for t, _ in ring.window(1.0, 2.0)]
    assert got == [1.0, 2.0]
    assert ring.window(10.0, 20.0) == []


# ---------------------------------------------------------------- config


def test_config_validation():
    with pytest.raises(ValueError):
        FlightRecorderConfig(tick_period_s=0.0)
    with pytest.raises(ValueError):
        FlightRecorderConfig(pre_window_s=-1.0)
    with pytest.raises(ValueError):
        FlightRecorderConfig(max_bundles=0)


def test_config_per_stream_capacity_override():
    cfg = FlightRecorderConfig(capacity=100, capacities={"spans": 7})
    assert cfg.stream_capacity("spans") == 7
    assert cfg.stream_capacity("alerts") == 100


def test_stream_and_metric_registries_shape():
    names = [name for name, _ in STREAMS]
    assert len(names) == len(set(names)) == 8
    metric_names = [name for name, _, _ in RECORDER_METRICS]
    assert all(name.startswith("flightrec_") for name in metric_names)
    assert len(metric_names) == len(set(metric_names))


# --------------------------------------------------------------- bundles


def _bundle(bundle_id="fb-0", t=1.5):
    streams = {
        "alerts": {
            "records": [{"t": t, "event": "firing", "rule": "store_stall"}],
            "captured": 1, "evicted": 0, "retained": 1,
        },
        "faults": {
            "records": [], "captured": 0, "evicted": 0, "retained": 0,
        },
    }
    return ForensicBundle(
        bundle_id=bundle_id, trigger_kind="alert_firing",
        trigger_detail="store_stall", rule="store_stall",
        t_trigger=t, window=(t - 1.0, t + 0.25), streams=streams,
        evidence={"rules": ["store_stall"], "signals": [], "incidents": [],
                  "trace_ids": [], "trace_id_count": 0, "store_seq": []},
    )


def test_canonical_json_is_sorted_and_stable():
    blob = canonical_json({"b": 1.5, "a": {"z": None, "y": [1, 2]}})
    assert blob == '{"a":{"y":[1,2],"z":null},"b":1.5}'
    assert blob == canonical_json(json.loads(blob))


def test_bundle_round_trip_byte_identical():
    bundle = _bundle()
    blob = bundle.to_canonical_json()
    back = ForensicBundle.from_dict(json.loads(blob))
    assert back.to_canonical_json() == blob
    assert back.window == bundle.window
    assert back.records("alerts") == bundle.records("alerts")
    assert bundle.n_records() == 1


# -------------------------------------------------------------- BundleLog


def test_bundle_log_append_and_load_round_trip():
    log = BundleLog()
    for i in range(3):
        n = log.append(_bundle(f"fb-{i}", t=float(i)))
        assert n > 0
    assert len(log) == 3
    bundles, truncated = BundleLog.load(log.to_bytes())
    assert truncated == 0
    assert [b.bundle_id for b in bundles] == ["fb-0", "fb-1", "fb-2"]


def test_bundle_log_torn_tail_truncates_not_trusts():
    log = BundleLog()
    log.append(_bundle("fb-0", t=0.0))
    clean_len = len(log.to_bytes())
    log.append(_bundle("fb-1", t=1.0))
    log.tear_tail(drop_bytes=9)  # the second record lost its tail

    bundles, truncated = log.recover()
    assert [b.bundle_id for b in bundles] == ["fb-0"]
    assert truncated > 0
    # Physical truncation: the buffer is back to the clean prefix and a
    # second recovery finds nothing left to drop.
    assert len(log.to_bytes()) == clean_len
    assert log.recover() == (bundles, 0)


def test_bundle_log_corrupt_byte_stops_at_clean_prefix():
    log = BundleLog()
    log.append(_bundle("fb-0", t=0.0))
    log.append(_bundle("fb-1", t=1.0))
    data = bytearray(log.to_bytes())
    data[len(data) // 2] ^= 0xFF  # flip one byte inside a record
    bundles, truncated = BundleLog.load(bytes(data))
    assert len(bundles) < 2
    assert truncated > 0


def test_bundle_log_tear_requires_positive_drop():
    with pytest.raises(ValueError):
        BundleLog().tear_tail(0)
