"""Acceptance test: exact loss reconciliation on a multi-hop fleet run
with an injected daemon failure *and* outbox overflow, plus the report
renderers and the pipeline-stats sampler path."""

import pytest

from repro.apps import MpiIoTest
from repro.core import ConnectorConfig
from repro.experiments import World, WorldConfig, run_job
from repro.experiments.world import STREAM_TAG


def _app(iterations=8):
    return MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=iterations, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )


@pytest.fixture
def hostile_run():
    """A campaign with both failure modes active: outbox depth 1 forces
    overflow drops, and L1 crashes after 40 messages."""
    world = World(WorldConfig(
        seed=7, quiet=True, n_compute_nodes=4, telemetry=True,
        forward_queue_depth=1,
    ))
    seen = {"n": 0}

    def trip_wire(message):
        seen["n"] += 1
        if seen["n"] == 40:
            world.fabric.l1.fail()

    world.fabric.l1.streams.subscribe(STREAM_TAG, trip_wire)
    result = run_job(world, _app(), "nfs", connector_config=ConnectorConfig())
    return world, result


def test_reconciliation_is_exact_under_overflow_and_failure(hostile_run):
    world, result = hostile_run
    health = result.health
    assert health is not None
    assert health.verify()
    assert all(row.exact for row in health.rows)
    assert health.in_flight == 0

    # The ledger covers every message the connector published...
    assert health.published == result.messages_published
    # ...some made it to DSOS before the crash...
    assert 0 < health.stored < health.published
    assert health.stored == world.dsos.count("darshan_data")
    # ...and both injected failure modes show up as attributed sites.
    outcomes = {outcome for (_, _, outcome) in health.drop_sites()}
    assert "drop_overflow" in outcomes
    assert "drop_daemon_failed" in outcomes
    assert sum(health.drop_sites().values()) == health.dropped


def test_render_text_shows_histograms_drops_and_ledger(hostile_run):
    _, result = hostile_run
    text = result.health.render_text()
    assert "per-stage latency" in text
    assert "drop sites" in text
    assert (
        "reconciliation published == stored + Σ drops(site) "
        "+ in_flight_spill: EXACT" in text
    )
    assert "drop_overflow" in text
    assert "drop_daemon_failed" in text
    assert "-- daemon counters --" in text
    assert "FAILED" in text  # l1 crashed mid-run


def test_report_renders_as_panels_and_html(hostile_run):
    _, result = hostile_run
    panels = result.health.to_panels()
    titles = [p.title for p in panels]
    assert "drop sites" in titles
    assert "loss reconciliation" in titles
    assert any(t.startswith("latency:") for t in titles)

    html = result.health.to_html()
    assert "<svg" in html
    assert "drop sites" in html

    # And through the terminal renderer all panels draw something.
    from repro.webservices.grafana import render_ascii

    for panel in panels:
        assert render_ascii(panel)


def test_healthy_run_reconciles_with_zero_drops():
    world = World(WorldConfig(seed=7, quiet=True, n_compute_nodes=4, telemetry=True))
    result = run_job(world, _app(iterations=4), "nfs",
                     connector_config=ConnectorConfig())
    health = result.health
    assert health.verify()
    assert health.dropped == 0
    assert health.stored == health.published == result.messages_published
    assert health.drop_sites() == {}


def test_no_health_report_without_telemetry():
    world = World(WorldConfig(seed=7, quiet=True, n_compute_nodes=4))
    result = run_job(world, _app(iterations=4), "nfs",
                     connector_config=ConnectorConfig())
    assert result.health is None
    with pytest.raises(RuntimeError):
        world.pipeline_health_report()


def test_pipeline_stats_sampler_lands_in_dsos():
    world = World(WorldConfig(seed=7, quiet=True, n_compute_nodes=4, telemetry=True))
    world.start_pipeline_samplers(interval_s=1.0)
    result = run_job(world, _app(iterations=4), "nfs",
                     connector_config=ConnectorConfig())
    world.stop_samplers()
    assert result.messages_published > 0
    rows = world.query_metrics("published").rows
    assert rows, "pipeline stats never reached the ldms_metrics schema"
    producers = {r["producer"] for r in rows}
    assert "head" in producers  # L1's own ledger rode the fabric to DSOS
