"""Metric-primitive edge cases: merge, clamping, empty windows, re-arm."""

import math

import pytest

from repro.experiments import World, WorldConfig
from repro.telemetry import GaugeStats, LogHistogram


# ------------------------------------------------------- LogHistogram


def test_merge_combines_counts_and_summaries():
    a = LogHistogram()
    b = LogHistogram()
    for v in (1e-3, 1e-2, 0.5):
        a.observe(v)
    for v in (1e-4, 2.0):
        b.observe(v)
    a.merge(b)
    assert a.count == 5
    assert a.total == pytest.approx(1e-3 + 1e-2 + 0.5 + 1e-4 + 2.0)
    assert a.min == pytest.approx(1e-4)
    assert a.max == pytest.approx(2.0)
    assert sum(a.counts) == 5


def test_merge_is_equivalent_to_observing_everything():
    values_a = [10 ** (i / 7 - 5) for i in range(40)]
    values_b = [10 ** (i / 5 - 2) for i in range(20)]
    merged = LogHistogram()
    for v in values_a:
        merged.observe(v)
    other = LogHistogram()
    for v in values_b:
        other.observe(v)
    merged.merge(other)
    direct = LogHistogram()
    for v in values_a + values_b:
        direct.observe(v)
    assert merged.counts == direct.counts
    assert merged.count == direct.count
    assert merged.total == pytest.approx(direct.total)
    assert merged.percentile(95) == pytest.approx(direct.percentile(95))


def test_merge_with_empty_histogram_is_identity():
    a = LogHistogram()
    a.observe(0.5)
    before = (list(a.counts), a.count, a.total, a.min, a.max)
    a.merge(LogHistogram())
    assert (list(a.counts), a.count, a.total, a.min, a.max) == before
    # Merging *into* an empty one adopts the other's extrema.
    empty = LogHistogram()
    full = LogHistogram()
    full.observe(0.25)
    empty.merge(full)
    assert empty.min == 0.25 and empty.max == 0.25 and empty.count == 1


def test_merge_rejects_different_binning():
    a = LogHistogram(lo=1e-7, hi=1e4, bins_per_decade=3)
    for other in (
        LogHistogram(lo=1e-6, hi=1e4, bins_per_decade=3),
        LogHistogram(lo=1e-7, hi=1e3, bins_per_decade=3),
        LogHistogram(lo=1e-7, hi=1e4, bins_per_decade=5),
    ):
        with pytest.raises(ValueError, match="different bins"):
            a.merge(other)


def test_out_of_range_values_clamp_to_edge_bins():
    h = LogHistogram(lo=1e-3, hi=1e3, bins_per_decade=1)
    h.observe(1e-9)   # far below lo -> first bin
    h.observe(0.0)    # zero is below lo -> first bin
    h.observe(1e9)    # far above hi -> last bin
    assert h.counts[0] == 2
    assert h.counts[-1] == 1
    assert sum(h.counts) == h.count == 3  # nothing lost
    # Summary stats see the raw values, not the clamped bins.
    assert h.min == 0.0
    assert h.max == pytest.approx(1e9)
    # The exact lo edge lands in the first bin, the hi edge clamps back
    # into the last.
    h2 = LogHistogram(lo=1e-3, hi=1e3, bins_per_decade=1)
    h2.observe(1e-3)
    h2.observe(1e3)
    assert h2.counts[0] == 1 and h2.counts[-1] == 1


def test_empty_histogram_summaries():
    h = LogHistogram()
    assert h.count == 0
    assert h.mean == 0.0
    assert h.percentile(50) == 0.0
    assert h.render() == ["(empty)"]
    d = h.to_dict()
    assert d["min"] == 0.0 and d["max"] == 0.0  # not +/-inf
    assert math.isfinite(d["mean"])


# ---------------------------------------------------------- GaugeStats


def test_gauge_stats_empty_window():
    g = GaugeStats()
    assert g.count == 0
    assert g.mean == 0.0  # no division by zero
    assert g.last == 0.0 and g.max == 0.0


def test_gauge_stats_observes():
    g = GaugeStats()
    for v in (3.0, 7.0, 5.0):
        g.observe(v)
    assert g.count == 3
    assert g.last == 5.0
    assert g.max == 7.0
    assert g.mean == pytest.approx(5.0)


# ------------------------------------------- PipelineStatsSampler


def _sampled_world(seed):
    """A traffic-free world sampling its own pipeline ledgers for 5s."""
    world = World(WorldConfig(seed=seed, quiet=True, n_compute_nodes=2))
    world.start_pipeline_samplers(interval_s=1.0)
    world.env.run(until=world.env.now + 5.0)
    world.stop_samplers()
    world.drain()
    rows = [dict(r) for r in world.query_metrics("forward_dropped_overflow")]
    for r in rows:
        r["timestamp"] -= world.config.epoch  # comparable across worlds
    return world, rows


def test_sampler_on_idle_fabric_publishes_zero_counters():
    """An empty sample window (no stream traffic besides the sampler's
    own sets) must still produce well-formed, all-zero drop counters."""
    world, rows = _sampled_world(seed=11)
    assert rows  # samples were taken and stored
    assert {r["source"] for r in rows} >= {"pipestats_head"}
    assert all(r["value"] == 0.0 for r in rows)
    dropped = [dict(r) for r in world.query_metrics("dropped_while_failed")]
    assert dropped and all(r["value"] == 0.0 for r in dropped)


def test_sampler_rearmed_across_two_world_runs():
    """Two Worlds, each arming its own sampler: the second run starts
    from a fresh ledger — no counter or sample bleed across
    environments, and the same seed reproduces the series exactly."""
    world_a, first = _sampled_world(seed=11)
    world_b, second = _sampled_world(seed=11)
    assert first  # not a vacuous comparison
    assert first == second
    # The second world's bus counters started from zero: its total
    # published count matches the first run's, not double it.
    a = world_a.fabric.l1.streams.stats.published
    b = world_b.fabric.l1.streams.stats.published
    assert a == b > 0


def test_sampler_rearm_guard_within_one_world():
    world = World(WorldConfig(seed=3, quiet=True, n_compute_nodes=2))
    world.start_pipeline_samplers(interval_s=1.0)
    with pytest.raises(RuntimeError, match="already running"):
        world.start_pipeline_samplers(interval_s=1.0)
    world.stop_samplers()
