"""Unit tests for span trees, critical paths and sampled retention."""

import pytest

from repro.telemetry import LogHistogram
from repro.telemetry.spans import (
    GAP,
    CriticalPathRollup,
    SpanTree,
    TelemetryConfig,
    TraceRegistry,
    _head_keep,
    critical_path,
)
from repro.telemetry.trace import HopRecord, MessageTrace

#: All sim timestamps live near this epoch (see experiments.world);
#: using it here keeps the exactness tests honest about magnitudes.
T0 = 1_650_000_000.0


def _trace(trace_id="1:0:0", t_begin=T0, hops=()):
    t = MessageTrace(trace_id=trace_id, job_id=1, rank=0, t_begin=t_begin)
    t.hops.extend(HopRecord(*h) for h in hops)
    return t


def _stored_trace(trace_id="1:0:0", e2e=0.5):
    """publish → forward (overlapping) → gap → ingest, stored."""
    return _trace(trace_id, T0, [
        ("publish", "n1", T0, T0 + 0.001, "published"),
        ("bus", "n1", T0 + 0.001, T0 + 0.001, "delivered"),
        ("forward", "n1", T0 + 0.0005, T0 + 0.003, "forwarded"),
        ("ingest", "s1", T0 + 0.004, T0 + e2e, "stored"),
    ])


# ------------------------------------------------------------ config


def test_telemetry_config_validation():
    TelemetryConfig(head_sample_rate=0.0)
    TelemetryConfig(head_sample_rate=1.0, tail_latency_s=0.0)
    with pytest.raises(ValueError):
        TelemetryConfig(head_sample_rate=1.5)
    with pytest.raises(ValueError):
        TelemetryConfig(head_sample_rate=-0.1)
    with pytest.raises(ValueError):
        TelemetryConfig(tail_latency_s=-1.0)


def test_head_sampling_is_deterministic_and_monotone():
    ids = [f"7:{r}:{s}" for r in range(8) for s in range(64)]
    kept_30 = {i for i in ids if _head_keep(i, 0.3)}
    # Rerun-stable.
    assert kept_30 == {i for i in ids if _head_keep(i, 0.3)}
    # Monotone in the rate: raising it only adds traces.
    kept_60 = {i for i in ids if _head_keep(i, 0.6)}
    assert kept_30 <= kept_60
    # Edges short-circuit.
    assert all(_head_keep(i, 1.0) for i in ids)
    assert not any(_head_keep(i, 0.0) for i in ids)
    # The hash spreads: 30% nominal keeps *some* and not *all*.
    assert 0 < len(kept_30) < len(ids)


# ------------------------------------------------------------ trees


def test_span_tree_from_stored_trace():
    tree = SpanTree.from_trace(_stored_trace(e2e=0.5))
    assert tree.status == "stored"
    assert tree.end_to_end_s == (T0 + 0.5) - T0
    assert tree.root.stage == "end_to_end"
    assert tree.root.parent_id is None
    assert [s.stage for s in tree.children] == [
        "publish", "bus", "forward", "ingest",
    ]
    assert all(s.parent_id == tree.root.span_id for s in tree.children)
    # Span ids are deterministic (hop order).
    assert tree.children[0].span_id == "1:0:0#0"


def test_span_tree_root_ends_at_store_not_at_duplicate_tail():
    trace = _stored_trace(e2e=0.5)
    # A dedup hop after the store must not stretch the e2e span.
    trace.hops.append(
        HopRecord("ingest", "s1", T0 + 0.9, T0 + 0.9, "dup_ignored")
    )
    tree = SpanTree.from_trace(trace)
    assert tree.t_end == T0 + 0.5
    assert tree.has_recovery
    assert len(tree.children) == 5  # the tail hop is still rendered


def test_span_tree_drop_site():
    tree = SpanTree.from_trace(_trace("1:0:1", T0, [
        ("publish", "n1", T0, T0 + 0.001, "published"),
        ("forward", "n1", T0 + 0.001, T0 + 0.002, "drop_overflow"),
    ]))
    assert tree.status == "dropped"
    assert tree.end_to_end_s is None
    assert tree.drop_site == ("forward", "n1", "drop_overflow")


# ------------------------------------------------------------ paths


def test_critical_path_sums_exactly_and_attributes_gaps():
    tree = SpanTree.from_trace(_stored_trace(e2e=0.5))
    path = critical_path(tree)
    assert path.exact
    assert path.total_s == tree.end_to_end_s
    # Segments are contiguous and clipped to the root interval.
    assert path.segments[0].t_start == tree.t_begin
    assert path.segments[-1].t_end == tree.t_end
    for a, b in zip(path.segments, path.segments[1:]):
        assert a.t_end == b.t_start
    # The inter-hop hole [T0+0.003, T0+0.004) shows up as GAP (expected
    # values are computed from the rounded timestamps: at this epoch a
    # float ulp is ~2.4e-7, so nominal literals would be off).
    stages = path.stage_seconds()
    assert stages[GAP] == (T0 + 0.004) - (T0 + 0.003)
    assert path.gating_stage == "ingest"


def test_critical_path_overlap_charges_the_longer_span():
    # forward starts inside publish but reaches further: publish gates
    # until forward's horizon passes it.
    tree = SpanTree.from_trace(_trace("1:0:2", T0, [
        ("publish", "n1", T0, T0 + 0.004, "published"),
        ("forward", "n1", T0 + 0.001, T0 + 0.010, "forwarded"),
        ("ingest", "s1", T0 + 0.010, T0 + 0.012, "stored"),
    ]))
    path = critical_path(tree)
    assert path.exact
    stages = path.stage_seconds()
    # Forward takes the path over at its start (it reaches further),
    # so publish gates only until forward begins.
    assert stages["publish"] == (T0 + 0.001) - T0
    assert stages["forward"] == (T0 + 0.010) - (T0 + 0.001)
    assert stages["ingest"] == (T0 + 0.012) - (T0 + 0.010)
    # Slack: publish ran 4ms but gated only 1ms of it.
    publish = tree.children[0]
    assert path.slack_s(publish) == (
        ((T0 + 0.004) - T0) - ((T0 + 0.001) - T0)
    )
    forward = tree.children[1]
    assert path.slack_s(forward) == 0.0


def test_critical_path_empty_trace():
    tree = SpanTree.from_trace(_trace("1:0:3", T0, []))
    path = critical_path(tree)
    assert path.segments == ()
    assert path.total_s == 0.0
    assert path.exact
    assert path.gating_stage == ""


# ------------------------------------------------------------ registry


def test_registry_default_keeps_everything():
    reg = TraceRegistry()
    for i in range(10):
        assert reg.offer(_stored_trace(f"1:0:{i}")) is not None
    assert len(reg) == 10
    assert reg.offered == 10
    assert reg.head_kept == 10
    assert reg.tail_kept == 0


def test_registry_head_sampling_subsets():
    ids = [f"9:{r}:{s}" for r in range(4) for s in range(32)]
    low = TraceRegistry(TelemetryConfig(head_sample_rate=0.2))
    for tid in ids:
        low.offer(_stored_trace(tid))
    assert 0 < len(low) < len(ids)
    assert set(low.trees) == {t for t in ids if _head_keep(t, 0.2)}


def test_registry_tail_keeps_drops_and_recoveries_at_rate_zero():
    reg = TraceRegistry(TelemetryConfig(head_sample_rate=0.0))
    # Clean stored trace: rejected.
    assert reg.offer(_stored_trace("1:0:0")) is None
    # Dropped: kept.
    dropped = _trace("1:0:1", T0, [
        ("forward", "n1", T0, T0 + 0.001, "drop_overflow"),
    ])
    assert reg.offer(dropped) is not None
    # Recovery survivor (redelivered then stored): kept.
    recovered = _stored_trace("1:0:2")
    recovered.hops.insert(
        3, HopRecord("forward", "n1", T0 + 0.003, T0 + 0.004, "redelivered")
    )
    assert reg.offer(recovered) is not None
    # Spilled (non-terminal): kept.
    spilled = _trace("1:0:3", T0, [
        ("publish", "n1", T0, T0 + 0.001, "spilled"),
    ])
    assert reg.offer(spilled) is not None
    assert len(reg) == 3
    assert reg.tail_kept == 3
    assert reg.head_kept == 0
    assert [t.trace_id for t in reg.drops()] == ["1:0:1"]
    # Spilled-and-not-yet-replayed is parked, not recovered.
    assert {t.trace_id for t in reg.recovered()} == {"1:0:2"}


def test_registry_tail_latency_threshold():
    reg = TraceRegistry(
        TelemetryConfig(head_sample_rate=0.0, tail_latency_s=0.4)
    )
    assert reg.offer(_stored_trace("1:0:0", e2e=0.1)) is None
    slow = reg.offer(_stored_trace("1:0:1", e2e=0.5))
    assert slow is not None
    assert reg.tail_kept == 1


def test_registry_slowest_is_sorted_and_stored_only():
    reg = TraceRegistry()
    reg.offer(_stored_trace("1:0:0", e2e=0.2))
    reg.offer(_stored_trace("1:0:1", e2e=0.9))
    reg.offer(_trace("1:0:2", T0, [
        ("forward", "n1", T0, T0 + 0.001, "drop_overflow"),
    ]))
    reg.offer(_stored_trace("1:0:3", e2e=0.5))
    slow = reg.slowest(2)
    assert [t.trace_id for t in slow] == ["1:0:1", "1:0:3"]


# ------------------------------------------------------------ exemplars


def test_exemplars_annotate_and_resolve():
    reg = TraceRegistry()
    hist = LogHistogram()
    trees = []
    for i, e2e in enumerate((0.001, 0.0012, 0.5, 0.0013)):
        tree = reg.offer(_stored_trace(f"1:0:{i}", e2e=e2e))
        hist.observe(tree.end_to_end_s)
        trees.append(tree)
    mapping = reg.annotate(hist)
    assert len(mapping) >= 2  # the values span several buckets
    # Every exemplar id resolves to a retained tree binning there, and
    # within a bucket the first retained trace (offer order) wins.
    expected = {}
    for tree in trees:
        expected.setdefault(hist._bin_of(tree.end_to_end_s), tree.trace_id)
    assert mapping == expected
    for idx, trace_id in mapping.items():
        assert reg.get(trace_id) is not None
        assert hist.exemplars[idx] == trace_id
        assert hist.exemplar_for(reg.get(trace_id).end_to_end_s) is not None
    # to_dict carries them keyed as strings.
    d = hist.to_dict()
    assert d["exemplars"] == {str(k): v for k, v in mapping.items()}


def test_histogram_exemplar_validation_and_merge():
    h = LogHistogram()
    with pytest.raises(ValueError):
        h.set_exemplar(10**6, "1:0:0")
    h.set_exemplar(3, "1:0:0")
    other = LogHistogram()
    other.set_exemplar(3, "9:9:9")
    other.set_exemplar(4, "2:0:0")
    h.merge(other)
    # Existing exemplars win; new buckets adopt the other's.
    assert h.exemplars == {3: "1:0:0", 4: "2:0:0"}
    assert "exemplars" not in LogHistogram().to_dict()


# ------------------------------------------------------------ rollup


def test_rollup_reconciles_with_profile():
    from repro.sim import PipelineProfile

    reg = TraceRegistry()
    for i, e2e in enumerate((0.1, 0.25, 0.4)):
        reg.offer(_stored_trace(f"1:0:{i}", e2e=e2e))
    reg.offer(_trace("1:0:9", T0, [
        ("forward", "n1", T0, T0 + 0.001, "drop_overflow"),
    ]))
    rollup = reg.rollup()
    assert rollup.messages == 3
    assert rollup.unstored == 1
    profile = PipelineProfile.from_registry(reg)
    assert profile.reconciles()
    assert rollup.reconciles_with(profile)
    # Gating time never exceeds run time, stage by stage.
    totals = profile.stage_seconds()
    for stage, secs in rollup.path_seconds.items():
        if stage != GAP:
            assert secs <= totals[stage] + 1e-12
    # Mismatched message counts must not reconcile.
    reg.offer(_stored_trace("1:0:10", e2e=0.3))
    assert not reg.rollup().reconciles_with(profile)


def test_rollup_rows_and_render():
    reg = TraceRegistry()
    reg.offer(_stored_trace("1:0:0"))
    rollup = reg.rollup()
    rows = rollup.rows()
    stages = [r["stage"] for r in rows]
    # Pipeline order, GAP last among known stages.
    assert stages.index("publish") < stages.index("ingest")
    assert abs(sum(r["share"] for r in rows) - 1.0) < 1e-9
    text = CriticalPathRollup.render_text(rollup)
    assert "critical-path rollup" in text
    assert "ingest" in text
