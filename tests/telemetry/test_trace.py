"""Unit tests for trace primitives, histograms and the collector."""

import pytest

from repro.sim import Environment
from repro.telemetry import (
    GaugeStats,
    HopRecord,
    LogHistogram,
    MessageTrace,
    collector_for,
    install,
    make_trace_id,
    parse_trace_id,
    uninstall,
)


def test_trace_id_round_trip():
    tid = make_trace_id(259903, 7, 1234)
    assert tid == "259903:7:1234"
    assert parse_trace_id(tid) == (259903, 7, 1234)


def test_trace_id_parse_rejects_foreign_ids():
    assert parse_trace_id("not-a-trace") is None
    assert parse_trace_id("a:b:c") is None
    assert parse_trace_id("1:2") is None


@pytest.mark.parametrize(
    "job_id,rank,seq",
    [
        (259903, 0, 0),            # rank 0, first message
        (1, 0, 2**63),             # sequence beyond any int32
        (2**40, 4096, 999_999),    # large job id
    ],
)
def test_trace_id_round_trip_regressions(job_id, rank, seq):
    tid = make_trace_id(job_id, rank, seq)
    assert parse_trace_id(tid) == (job_id, rank, seq)
    assert parse_trace_id(tid, strict=True) == (job_id, rank, seq)


@pytest.mark.parametrize(
    "bad",
    [
        "",                 # empty
        "1:2:3:4",          # too many separators
        "1::3",             # empty component
        "-1:0:0",           # negative job
        "1:-2:3",           # negative rank
        "1:2:-3",           # negative seq
        "1:2:3.5",          # float component
        " 1:2:3",           # whitespace (int() would accept it)
        "0x1:2:3",          # non-decimal
        12345,              # not a string at all
    ],
)
def test_trace_id_parse_malformed(bad):
    assert parse_trace_id(bad) is None
    with pytest.raises(ValueError, match="malformed trace id"):
        parse_trace_id(bad, strict=True)


@pytest.mark.parametrize(
    "job_id,rank,seq",
    [(-1, 0, 0), (1, -1, 0), (1, 0, -1), (1.5, 0, 0), ("1", 0, 0),
     (True, 0, 0)],
)
def test_make_trace_id_rejects_bad_components(job_id, rank, seq):
    with pytest.raises(ValueError):
        make_trace_id(job_id, rank, seq)


def test_hop_record_drop_detection():
    ok = HopRecord("bus", "n1", 0.0, 0.0, "delivered")
    drop = HopRecord("forward", "n1", 0.0, 0.0, "drop_overflow")
    assert not ok.is_drop
    assert drop.is_drop
    assert drop.site == ("forward", "n1", "drop_overflow")


def test_message_trace_status_resolution():
    t = MessageTrace("1:0:0", 1, 0, t_begin=10.0)
    assert t.status == "in_flight"
    t.hops.append(HopRecord("publish", "n1", 10.0, 10.1, "published"))
    assert t.status == "in_flight"
    t.hops.append(HopRecord("ingest", "shirley", 10.5, 10.5, "stored"))
    assert t.status == "stored"
    assert t.end_to_end_latency_s == pytest.approx(0.5)
    assert t.drop_site is None


def test_message_trace_drop_site():
    t = MessageTrace("1:0:1", 1, 0, t_begin=0.0)
    t.hops.append(HopRecord("forward", "nid00001", 1.0, 1.0, "drop_overflow"))
    assert t.status == "dropped"
    assert t.drop_site == ("forward", "nid00001", "drop_overflow")


# --------------------------------------------------------------- histogram


def test_log_histogram_bins_and_summary():
    h = LogHistogram(lo=1e-6, hi=1e0, bins_per_decade=1)
    assert h.n_bins == 6
    for v in (2e-6, 3e-6, 0.5):
        h.observe(v)
    assert h.count == 3
    assert sum(h.counts) == 3
    assert h.counts[0] == 2  # [1e-6, 1e-5)
    assert h.counts[-1] == 1  # [1e-1, 1e0)
    assert h.min == pytest.approx(2e-6)
    assert h.max == pytest.approx(0.5)
    assert h.mean == pytest.approx((2e-6 + 3e-6 + 0.5) / 3)


def test_log_histogram_clamps_out_of_range():
    h = LogHistogram(lo=1e-3, hi=1e0, bins_per_decade=1)
    h.observe(0.0)  # below range -> first bin
    h.observe(1e9)  # above range -> last bin
    assert h.counts[0] == 1
    assert h.counts[-1] == 1
    assert h.count == 2


def test_log_histogram_percentile_monotone():
    h = LogHistogram()
    for v in (1e-6, 1e-5, 1e-4, 1e-3, 1e-2):
        h.observe(v)
    ps = [h.percentile(q) for q in (10, 50, 90, 100)]
    assert ps == sorted(ps)
    assert h.percentile(0) <= h.percentile(100)
    with pytest.raises(ValueError):
        h.percentile(101)


def test_log_histogram_merge():
    a, b = LogHistogram(), LogHistogram()
    a.observe(1e-5)
    b.observe(1e-2)
    a.merge(b)
    assert a.count == 2
    assert a.min == pytest.approx(1e-5)
    assert a.max == pytest.approx(1e-2)
    with pytest.raises(ValueError):
        a.merge(LogHistogram(lo=1e-9))


def test_log_histogram_to_dict_and_render():
    h = LogHistogram()
    h.observe(3e-4)
    d = h.to_dict()
    assert len(d["bin_edges"]) == len(d["counts"]) + 1
    assert sum(d["counts"]) == 1
    assert d["count"] == 1
    lines = h.render()
    assert len(lines) == 1 and "1" in lines[0]
    assert LogHistogram().render() == ["(empty)"]


def test_gauge_stats():
    g = GaugeStats()
    for v in (1.0, 5.0, 2.0):
        g.observe(v)
    assert g.count == 3
    assert g.last == 2.0
    assert g.max == 5.0
    assert g.mean == pytest.approx(8.0 / 3)


# --------------------------------------------------------------- collector


def test_install_is_idempotent_and_scoped_per_env():
    env_a, env_b = Environment(), Environment()
    a = install(env_a)
    assert install(env_a) is a
    assert collector_for(env_a) is a
    assert collector_for(env_b) is None
    b = install(env_b)
    assert b is not a
    uninstall(env_a)
    assert collector_for(env_a) is None


def test_collector_open_close_hop_measures_span():
    env = Environment()
    c = install(env)
    c.begin("1:0:0", 1, 0, "n1")
    c.open_hop("1:0:0", "forward", "n1")
    env._now = 2.5  # advance the clock directly; no events needed
    rec = c.close_hop("1:0:0", "forward", "n1", "forwarded")
    assert rec.latency_s == pytest.approx(2.5)
    assert c.histograms["forward"].count == 1


def test_collector_lazy_trace_from_foreign_hop():
    env = Environment()
    c = install(env)
    c.hop("7:3:9", "bus", "n1", "drop_no_subscriber")
    t = c.traces["7:3:9"]
    assert (t.job_id, t.rank) == (7, 3)
    assert c.reconcile()[(7, 3)]["dropped"] == 1


def test_collector_reconcile_groups_by_job_rank():
    env = Environment()
    c = install(env)
    c.begin("1:0:0", 1, 0)
    c.hop("1:0:0", "ingest", "shirley", "stored")
    c.begin("1:1:0", 1, 1)
    c.hop("1:1:0", "forward", "n1", "drop_overflow")
    c.begin("2:0:0", 2, 0)  # still in flight
    groups = c.reconcile()
    assert groups[(1, 0)] == {
        "published": 1, "stored": 1, "dropped": 0, "spilled": 0,
        "in_flight": 0, "drops": {},
    }
    assert groups[(1, 1)]["drops"] == {("forward", "n1", "drop_overflow"): 1}
    assert groups[(2, 0)]["in_flight"] == 1
    # Job filter.
    assert set(c.reconcile(job_id=1)) == {(1, 0), (1, 1)}
    assert c.drop_sites() == {("forward", "n1", "drop_overflow"): 1}
