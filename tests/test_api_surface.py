"""Direct coverage of small public API surfaces exercised only
indirectly elsewhere."""

import pytest

from repro.sim import Environment, RngRegistry


def test_subscriber_count():
    from repro.ldms import StreamsBus

    bus = StreamsBus()
    assert bus.subscriber_count("t") == 0
    bus.subscribe("t", lambda m: None)
    bus.subscribe("t", lambda m: None)
    assert bus.subscriber_count("t") == 2
    assert bus.subscriber_count("other") == 0


def test_daemon_failed_property():
    from repro.cluster import Cluster, ClusterSpec
    from repro.ldms import Ldmsd

    env = Environment()
    cluster = Cluster(env, RngRegistry(0), ClusterSpec(n_compute_nodes=1))
    d = Ldmsd(env, cluster.compute_nodes[0], cluster.network)
    assert not d.failed
    d.fail()
    assert d.failed
    assert d.publish_now("t", {"x": 1}) == 0
    assert d.dropped_while_failed == 1
    d.recover()
    assert not d.failed


def test_connector_stats_overhead_seconds():
    from repro.core import ConnectorStats

    stats = ConnectorStats(format_seconds=2.0, publish_seconds=0.5)
    assert stats.overhead_seconds == 2.5


def test_nfs_server_queue_length():
    import numpy as np

    from repro.fs import LoadProcess, NFSFileSystem, NFSParams

    env = Environment()
    quiet = LoadProcess(
        np.random.default_rng(0), diurnal_amplitude=0, noise_sigma=0,
        n_modes=0, incident_rate=0,
    )
    fs = NFSFileSystem(env, quiet, np.random.default_rng(1), NFSParams(cv=0.0))
    assert fs.server_queue_length == 0
    # Saturate the thread pool; queue must become visible mid-flight.
    peak = {"q": 0}

    def writer(i):
        h, _ = yield from fs.open(f"/f{i}", "n", "w")
        yield from fs.write(h, 2**20)
        peak["q"] = max(peak["q"], fs.server_queue_length)
        yield from fs.close(h)

    for i in range(fs.params.server_threads + 4):
        env.process(writer(i))
    env.run()
    assert fs.server_queue_length == 0


def test_network_link_helpers():
    from repro.cluster import Network

    env = Environment()
    net = Network(env)
    for n in "abc":
        net.add_node(n)
    l1 = net.add_link("a", "b", latency_s=0.001, bandwidth_bps=1000.0)
    net.add_link("b", "c", latency_s=0.002, bandwidth_bps=1000.0)
    assert l1.transmit_time(500) == pytest.approx(0.5)
    links = net.links_on_path("a", "c")
    assert len(links) == 2
    assert links[0] is l1


def test_h5_dataset_geometry_props():
    from repro.hdf5.file import H5Dataset

    ds = H5Dataset(file=None, name="u", shape=(4, 5, 6), element_size=8)
    assert ds.ndims == 3
    assert ds.npoints_total == 120
    assert ds.nbytes == 960


def test_dsosd_has_schema():
    from repro.dsos import Attr, Dsosd, Schema

    d = Dsosd("x")
    schema = Schema("s", [Attr("a", "int")], {"idx": ("a",)})
    assert not d.has_schema("s")
    d.attach_schema(schema)
    assert d.has_schema("s")


def test_application_rank_process_abstract():
    from repro.apps import Application

    class Incomplete(Application):
        pass

    with pytest.raises(NotImplementedError):
        Incomplete().rank_process(None, 0)


def test_event_state_properties():
    env = Environment()
    ev = env.event()
    assert not ev.triggered and not ev.processed
    ev.succeed("v")
    assert ev.triggered and ev.ok and not ev.processed
    env.run()
    assert ev.processed
    assert ev.value == "v"


def test_fabric_totals_delivery_ratio_empty():
    from repro.ldms.aggregator import FabricTotals

    t = FabricTotals(
        published_on_compute=0, received_at_l2=0, dropped_overflow=0,
        bytes_forwarded=0,
    )
    assert t.delivery_ratio == 1.0


def test_groupby_groups_exposes_indices():
    import numpy as np

    from repro.webservices import DataFrame

    df = DataFrame({"k": [1, 2, 1], "v": [10.0, 20.0, 30.0]})
    groups = df.groupby("k").groups()
    assert set(groups) == {(1,), (2,)}
    np.testing.assert_array_equal(groups[(1,)], [0, 2])
