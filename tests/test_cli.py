"""Tests for the command-line front ends."""

import pytest

from repro.cli import main as repro_main
from repro.darshan.cli import main as parser_main, render_log


@pytest.fixture
def logfile(tmp_path):
    """A small real Darshan log on disk."""
    from repro.apps import MpiIoTest
    from repro.darshan import write_log
    from repro.experiments import World, WorldConfig, run_job

    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=2, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs")
    path = tmp_path / "job.darshan"
    write_log(result.darshan_log, path)
    return path, result


def test_darshan_parser_renders_header_and_totals(logfile, capsys):
    path, result = logfile
    assert parser_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert f"# jobid: {result.job_id}" in out
    assert "# nprocs: 4" in out
    assert "POSIX module totals" in out
    assert "total_POSIX_BYTES_WRITTEN:" in out
    assert "MPIIO" in out


def test_darshan_parser_module_filter(logfile, capsys):
    path, _ = logfile
    assert parser_main([str(path), "--module", "MPIIO"]) == 0
    out = capsys.readouterr().out
    assert "MPIIO module totals" in out
    assert "POSIX module totals" not in out


def test_darshan_parser_dxt_output(logfile, capsys):
    path, _ = logfile
    assert parser_main([str(path), "--dxt"]) == 0
    out = capsys.readouterr().out
    assert "DXT segments" in out
    assert "\twrite\t" in out


def test_darshan_parser_bad_file(tmp_path, capsys):
    bad = tmp_path / "junk"
    bad.write_bytes(b"not a log")
    assert parser_main([str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_darshan_parser_missing_file(tmp_path, capsys):
    assert parser_main([str(tmp_path / "ghost")]) == 1


def test_render_log_contains_per_record_lines(logfile):
    path, result = logfile
    text = render_log(result.darshan_log)
    assert "POSIX_WRITES" in text
    assert "/nfs/scratch/mpi-io-test" in text


def test_repro_cli_fig7(capsys):
    assert repro_main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "anomalous" in out


def test_repro_cli_fig8(capsys):
    assert repro_main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "10 write phases" in out


def test_repro_cli_telemetry(capsys):
    assert repro_main([
        "telemetry", "--queue-depth", "1", "--inject-failure",
        "--fail-after", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency" in out
    assert "drop sites" in out
    assert (
        "reconciliation published == stored + Σ drops(site) "
        "+ in_flight_spill: EXACT" in out
    )
    assert "drop_overflow" in out
    assert "drop_daemon_failed" in out


def test_repro_cli_telemetry_check_passes(capsys):
    # A healthy run reconciles, so --check is a quiet exit 0.
    assert repro_main(["telemetry", "--check"]) == 0
    assert "FAIL" not in capsys.readouterr().out


def test_repro_cli_telemetry_check_exits_nonzero_on_violation(
    monkeypatch, capsys
):
    from repro.telemetry.report import PipelineHealthReport

    monkeypatch.setattr(PipelineHealthReport, "verify", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["telemetry", "--check"])
    assert exc.value.code == 1
    assert "FAIL: loss reconciliation violated" in capsys.readouterr().out


def test_repro_cli_chaos_check(capsys):
    assert repro_main(["chaos", "--seed", "7", "--check"]) == 0
    out = capsys.readouterr().out
    assert "applied faults" in out
    assert "daemon_crash" in out
    assert "daemon_recover" in out
    assert "link_partition" in out
    assert "slow_store_begin" in out
    assert "recovery sites" in out
    assert "EXACT" in out


def test_repro_cli_chaos_check_exits_nonzero_on_violation(monkeypatch, capsys):
    from repro.telemetry.report import PipelineHealthReport

    monkeypatch.setattr(PipelineHealthReport, "verify", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["chaos", "--seed", "7", "--check"])
    assert exc.value.code == 1
    assert "FAIL: unaccounted events" in capsys.readouterr().out


def test_repro_cli_telemetry_json(capsys):
    import json

    assert repro_main(["telemetry", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["exact"] is True
    assert payload["published"] == payload["stored"]
    assert "end_to_end" in payload["histograms"]
    assert payload["rows"] and payload["rows"][0]["exact"] is True


def test_repro_cli_chaos_json(capsys):
    import json

    assert repro_main(["chaos", "--seed", "7", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    kinds = {f["kind"] for f in payload["applied_faults"]}
    assert {"daemon_crash", "link_partition", "slow_store_begin"} <= kinds
    assert payload["health"]["exact"] is True
    assert payload["fast_lane"] is True


def test_repro_cli_diagnose_check(capsys):
    assert repro_main(["diagnose", "--seed", "42", "--check"]) == 0
    out = capsys.readouterr().out
    assert "incident log" in out
    assert "fault detection scorecard" in out
    assert "recall=100%" in out
    assert "clean-run control: 0 alert(s) (OK)" in out
    assert "OK: every fault class detected; clean run silent" in out


def test_repro_cli_diagnose_json(capsys):
    import json

    assert repro_main(["diagnose", "--seed", "42", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["score"]["ok"] is True
    assert payload["score"]["classes"] == {
        "daemon_crash": True, "link_degrade": True, "slow_store": True,
    }
    assert payload["clean_run_alerts"] == 0
    assert payload["incidents"]
    # Incident ids are positional and durations are firing→resolved
    # spans (null while still firing) — the forensics cross-reference.
    assert [i["id"] for i in payload["incidents"]] == list(
        range(len(payload["incidents"]))
    )
    for incident in payload["incidents"]:
        assert "duration_s" in incident
        if incident["state"] == "resolved":
            assert incident["duration_s"] >= 0
        else:
            assert incident["duration_s"] is None
    for d in payload["score"]["detections"]:
        assert d["detected"] and d["detection_latency_s"] > 0


def test_repro_cli_diagnose_check_exits_nonzero_when_undetected(
    monkeypatch, capsys
):
    from repro.diagnosis import DiagnosisScore

    monkeypatch.setattr(DiagnosisScore, "ok", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["diagnose", "--seed", "42", "--check"])
    assert exc.value.code == 1
    assert "FAIL" in capsys.readouterr().out


def test_repro_cli_explain_text(capsys):
    assert repro_main(["explain"]) == 0
    out = capsys.readouterr().out
    assert "== applied faults ==" in out
    assert "== bottleneck verdicts (job" in out
    assert "== classification scorecard ==" in out
    assert "recall=100% precision=100%" in out
    assert "fired:" in out and "-> " in out
    assert "clean-run control: primary verdict 'healthy' (OK)" in out


def test_repro_cli_explain_json(capsys):
    import json

    assert repro_main(["explain", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["score"]["ok"] is True
    assert payload["score"]["recall"] == payload["score"]["precision"] == 1.0
    assert payload["clean_healthy"] is True
    assert payload["clean_primary"] == "healthy"
    report = payload["report"]
    assert report["primary"] != "healthy"
    assert {v["class"] for v in report["verdicts"]} == {
        "fs_contention", "network_transport", "pipeline_self_inflicted",
    }
    for verdict in report["verdicts"]:
        assert verdict["thresholds_fired"]
        assert verdict["evidence"]["incidents"]
        assert verdict["recommendations"]
    assert report["features"]["n_ranks"] == 8


def test_repro_cli_explain_check(capsys):
    assert repro_main(["explain", "--check"]) == 0
    out = capsys.readouterr().out
    assert "OK[slow]" in out and "OK[columnar]" in out
    assert "OK: every fault class classified" in out


def test_repro_cli_explain_check_exits_nonzero_when_misclassified(
    monkeypatch, capsys
):
    from repro.diagnosis import ExplainScore

    monkeypatch.setattr(ExplainScore, "ok", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["explain", "--check"])
    assert exc.value.code == 1
    assert "FAIL" in capsys.readouterr().out


def test_repro_cli_explain_unknown_job_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["explain", "--job", "999999"])
    assert exc.value.code == 2
    assert "no stored events for job 999999" in capsys.readouterr().err


def test_repro_cli_explain_columnar_requires_fast_lane(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["explain", "--columnar", "--no-fast-lane"])
    assert exc.value.code == 2
    assert "--columnar requires the fast lane" in capsys.readouterr().err


def test_repro_cli_profile(capsys):
    assert repro_main(["profile"]) == 0
    out = capsys.readouterr().out
    assert "pipeline sim-time profile" in out
    assert "connector" in out and "forwarder" in out
    assert "EXACT" in out


def test_repro_cli_profile_json(capsys):
    import json

    assert repro_main(["profile", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["reconciles"] is True
    assert payload["messages"] > 0
    stages = {c["stage"] for c in payload["components"]}
    assert {"publish", "forward", "ingest"} <= stages


def test_repro_cli_unknown_command():
    with pytest.raises(SystemExit):
        repro_main(["frobnicate"])


# ----------------------------------------------------------- repro trace


def test_repro_cli_trace_slowest_check(capsys):
    assert repro_main(["trace", "--slowest", "3", "--check"]) == 0
    out = capsys.readouterr().out
    assert "retained 288 of 288 traces" in out
    assert out.count("critical path:") == 3
    assert "exact: yes" in out
    assert "critical-path rollup" in out
    assert "OK: 287 critical paths exact" in out


def test_repro_cli_trace_drops_with_sampling(capsys):
    assert repro_main([
        "trace", "--drops", "--head-rate", "0.05",
    ]) == 0
    out = capsys.readouterr().out
    # Tail sampling keeps drops even at a 5% head rate.
    assert "dropped at" in out
    assert "tail" in out


def test_repro_cli_trace_by_id_and_missing_id(capsys):
    assert repro_main(["trace", "--trace-id", "259900:1:4"]) == 0
    out = capsys.readouterr().out
    assert "trace 259900:1:4" in out
    # An unknown identifier is a usage error (exit 2), not a broken
    # invariant (exit 1) — the uniform exit-code contract.
    with pytest.raises(SystemExit) as exc:
        repro_main(["trace", "--trace-id", "999:9:9"])
    assert exc.value.code == 2
    assert "not retained" in capsys.readouterr().out


def test_repro_cli_trace_json(capsys):
    import json

    assert repro_main(["trace", "--slowest", "2", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["rollup_reconciles_with_profile"] is True
    assert payload["registry"]["retained"] == payload["registry"]["offered"]
    assert len(payload["traces"]) == 2
    for t in payload["traces"]:
        assert t["critical_path"]["exact"] is True
        assert t["critical_path"]["total_s"] == t["root"]["duration_s"]


def test_repro_cli_trace_check_exits_nonzero_on_inexact(monkeypatch, capsys):
    from repro.telemetry import spans

    monkeypatch.setattr(
        spans.CriticalPath, "exact", property(lambda self: False)
    )
    with pytest.raises(SystemExit) as exc:
        repro_main(["trace", "--slowest", "1", "--check"])
    assert exc.value.code == 1
    assert "FAIL: critical path != end-to-end latency" in (
        capsys.readouterr().out
    )


# --------------------------------------------------- sorted JSON contract


@pytest.mark.parametrize(
    "argv",
    [
        ["telemetry", "--json"],
        ["chaos", "--seed", "7", "--json"],
        ["profile", "--json"],
        ["trace", "--slowest", "1", "--json"],
        ["forensics", "--capture", "--json"],
        ["explain", "--json"],
    ],
    ids=["telemetry", "chaos", "profile", "trace", "forensics", "explain"],
)
def test_repro_cli_json_outputs_are_stable_sorted(argv, capsys):
    """Every --json stdout is byte-stable: 2-space indent, sorted keys."""
    import json

    assert repro_main(argv) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert out == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_repro_cli_bench_json_sorted_and_snapshotted(monkeypatch, capsys,
                                                     tmp_path):
    """bench --json: sorted JSON on stdout, dated snapshot on disk."""
    import json

    from repro.experiments import bench

    fake = {
        "benchmark": "pipeline_fast_lane",
        "campaign": {"quick": True},
        "slow": {"wall_s": 2.0, "events_per_sec": 100.0, "engine_events": 5},
        "fast": {"wall_s": 1.0, "events_per_sec": 200.0, "engine_events": 5},
        "speedup_events_per_sec": 2.0,
        "speedup_vs_seed_baseline": None,
    }
    monkeypatch.setattr(bench, "pipeline_benchmark", lambda **kw: fake)
    monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
    assert repro_main(["bench", "--quick", "--json"]) == 0
    out = capsys.readouterr().out
    assert out == json.dumps(fake, indent=2, sort_keys=True) + "\n"
    snaps = list(tmp_path.glob("bench_pipeline_*.json"))
    assert len(snaps) == 1
    assert json.loads(snaps[0].read_text()) == fake
    # The dated name embeds an ISO date.
    import re

    assert re.fullmatch(
        r"bench_pipeline_\d{4}-\d{2}-\d{2}\.json", snaps[0].name
    )


def test_bench_same_day_snapshots_never_overwrite(monkeypatch, tmp_path):
    """Same-day reruns get _runN suffixes — the first free slot wins."""
    import datetime

    from repro.experiments import bench

    monkeypatch.setattr(bench, "RESULTS_DIR", tmp_path)
    day = datetime.date(2026, 8, 9)
    first = bench.snapshot_path(day)
    assert first.name == "bench_pipeline_2026-08-09.json"
    first.write_text("{}")
    second = bench.snapshot_path(day)
    assert second.name == "bench_pipeline_2026-08-09_run2.json"
    second.write_text("{}")
    third = bench.snapshot_path(day)
    assert third.name == "bench_pipeline_2026-08-09_run3.json"
    # A gap is reused: delete run2 and the next snapshot lands there.
    second.unlink()
    assert bench.snapshot_path(day).name == "bench_pipeline_2026-08-09_run2.json"


# -------------------------------------------------------------- repro fleet


def test_repro_cli_version(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["--version"])
    assert exc.value.code == 0
    assert capsys.readouterr().out.strip().startswith("repro ")


def test_repro_cli_fleet_catalog_check(capsys):
    assert repro_main(["fleet", "--catalog", "--check"]) == 0
    out = capsys.readouterr().out
    assert "== signal catalog (61 signals, complete) ==" in out
    assert "OK: catalog complete (61 signals)" in out


def test_repro_cli_fleet_catalog_json(capsys):
    import json

    assert repro_main(["fleet", "--catalog", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert payload["complete"] is True
    assert payload["count"] == 61 and payload["missing"] == []
    assert out == json.dumps(payload, indent=2, sort_keys=True) + "\n"


def test_repro_cli_fleet_catalog_check_fails_when_incomplete(
    monkeypatch, capsys
):
    # Simulate the stack emitting a signal nobody catalogued.  (The
    # registries themselves can't be patched here: default_catalog()
    # reads the same tables expected_signals() does, so growing one
    # grows both.)
    from repro.diagnosis import signals

    real = signals.expected_signals
    monkeypatch.setattr(signals, "expected_signals",
                        lambda: real() | {"ghost_series"})
    with pytest.raises(SystemExit) as exc:
        repro_main(["fleet", "--catalog", "--check"])
    assert exc.value.code == 1
    assert "FAIL: signals missing from the catalog: ghost_series" in (
        capsys.readouterr().out
    )


def test_repro_cli_fleet_modes_are_mutually_exclusive(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["fleet", "--export", "--catalog"])
    assert exc.value.code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_repro_cli_fleet_scan_check(capsys):
    assert repro_main(["fleet", "--scan", "--check"]) == 0
    out = capsys.readouterr().out
    assert "== fleet readiness ==" in out
    assert "== attaway: scorecard" in out
    assert "== signal catalog (61 signals, complete) ==" in out
    assert ("OK: 3 scorecards reconcile exactly; chaos faults deducted "
            "via matching components") in out


def test_repro_cli_fleet_json_sorted_and_stable(capsys):
    import json

    assert repro_main(["fleet", "--json"]) == 0
    out = capsys.readouterr().out
    payload = json.loads(out)
    assert out == json.dumps(payload, indent=2, sort_keys=True) + "\n"
    assert payload["fleet_ready"] is False
    assert payload["worst_cluster"] == "attaway"
    names = [c["cluster"] for c in payload["clusters"]]
    assert names == ["voltrino", "chama", "attaway"]
    for c in payload["clusters"]:
        assert c["scorecard"]["reconciles"] is True


def test_repro_cli_fleet_export_check(capsys):
    assert repro_main(["fleet", "--export", "--check"]) == 0
    captured = capsys.readouterr()
    assert captured.out.endswith("# EOF\n")
    assert "# TYPE repro_health_score gauge" in captured.out
    assert 'repro_health_score{cluster="attaway"}' in captured.out
    assert "(uncatalogued)" not in captured.out
    assert "OK: every exported family catalogued" in captured.err


def test_repro_cli_fleet_scan_check_fails_on_broken_reconciliation(
    monkeypatch, capsys
):
    from repro.fleet.scorecard import HealthScore

    monkeypatch.setattr(HealthScore, "reconciles", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["fleet", "--check"])
    assert exc.value.code == 1
    assert "FAIL: scorecard does not reconcile" in capsys.readouterr().out


# ---------------------------------------------------------- repro forensics


def test_repro_cli_forensics_capture(capsys):
    assert repro_main(["forensics", "--capture"]) == 0
    out = capsys.readouterr().out
    assert "== applied faults ==" in out
    assert "== frozen bundles ==" in out
    assert "fb-0" in out
    assert "== rings (captured == retained + evicted) ==" in out
    assert "NO" not in out  # every ring reconciles
    assert "== fault-class evidence matches ==" in out
    assert "UNMATCHED" not in out
    assert "0 trigger(s) dropped" in out


def test_repro_cli_forensics_capture_json(capsys):
    import json

    assert repro_main(["forensics", "--capture", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["reconciles"] is True
    assert payload["bundles"]
    for bundle in payload["bundles"]:
        assert bundle["evidence"]["rules"]
        assert bundle["evidence"]["signals"]
    for match in payload["matches"].values():
        assert match["matched"] is True
    assert payload["archive_bytes"] > 0


def test_repro_cli_forensics_show(capsys):
    assert repro_main(["forensics", "--show", "fb-0"]) == 0
    out = capsys.readouterr().out
    assert "bundle fb-0" in out
    assert "alerts" in out
    assert "evidence links:" in out


def test_repro_cli_forensics_show_unknown_bundle_is_usage_error(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["forensics", "--show", "nope-99"])
    assert exc.value.code == 2
    err = capsys.readouterr().err
    assert "no bundle 'nope-99'" in err
    assert "fb-0" in err  # the error lists what did freeze


def test_repro_cli_forensics_diff_against_clean_snapshot(capsys):
    assert repro_main(["forensics", "--diff", "fb-0", "clean-0"]) == 0
    out = capsys.readouterr().out
    assert "diff fb-0 vs clean-0" in out
    assert "first divergence: stream" in out


def test_repro_cli_forensics_modes_are_mutually_exclusive(capsys):
    with pytest.raises(SystemExit) as exc:
        repro_main(["forensics", "--show", "fb-0", "--diff", "a", "b"])
    assert exc.value.code == 2
    assert "mutually exclusive" in capsys.readouterr().err


def test_repro_cli_forensics_check_ok(capsys):
    assert repro_main(["forensics", "--capture", "--check"]) == 0
    out = capsys.readouterr().out
    assert "OK[slow]" in out
    assert "OK[columnar]" in out
    assert "OK: every fault class matched a bundle naming its signal" in out


def test_repro_cli_forensics_check_fails_on_unmatched_class(
    monkeypatch, capsys
):
    from repro.diagnosis import forensics

    monkeypatch.setattr(
        forensics, "match_bundles",
        lambda applied, bundles, epoch, grace_s=1.0: {
            "daemon_crash": forensics.ClassMatch("daemon_crash", 1),
        },
    )
    with pytest.raises(SystemExit) as exc:
        repro_main(["forensics", "--capture", "--check"])
    assert exc.value.code == 1
    assert "FAIL" in capsys.readouterr().out
