"""Tests for the command-line front ends."""

import pytest

from repro.cli import main as repro_main
from repro.darshan.cli import main as parser_main, render_log


@pytest.fixture
def logfile(tmp_path):
    """A small real Darshan log on disk."""
    from repro.apps import MpiIoTest
    from repro.darshan import write_log
    from repro.experiments import World, WorldConfig, run_job

    world = World(WorldConfig(seed=1, quiet=True, n_compute_nodes=4))
    app = MpiIoTest(
        n_nodes=2, ranks_per_node=2, iterations=2, block_size=2**20,
        collective=False, sync_per_iteration=False,
    )
    result = run_job(world, app, "nfs")
    path = tmp_path / "job.darshan"
    write_log(result.darshan_log, path)
    return path, result


def test_darshan_parser_renders_header_and_totals(logfile, capsys):
    path, result = logfile
    assert parser_main([str(path)]) == 0
    out = capsys.readouterr().out
    assert f"# jobid: {result.job_id}" in out
    assert "# nprocs: 4" in out
    assert "POSIX module totals" in out
    assert "total_POSIX_BYTES_WRITTEN:" in out
    assert "MPIIO" in out


def test_darshan_parser_module_filter(logfile, capsys):
    path, _ = logfile
    assert parser_main([str(path), "--module", "MPIIO"]) == 0
    out = capsys.readouterr().out
    assert "MPIIO module totals" in out
    assert "POSIX module totals" not in out


def test_darshan_parser_dxt_output(logfile, capsys):
    path, _ = logfile
    assert parser_main([str(path), "--dxt"]) == 0
    out = capsys.readouterr().out
    assert "DXT segments" in out
    assert "\twrite\t" in out


def test_darshan_parser_bad_file(tmp_path, capsys):
    bad = tmp_path / "junk"
    bad.write_bytes(b"not a log")
    assert parser_main([str(bad)]) == 1
    assert "error" in capsys.readouterr().err


def test_darshan_parser_missing_file(tmp_path, capsys):
    assert parser_main([str(tmp_path / "ghost")]) == 1


def test_render_log_contains_per_record_lines(logfile):
    path, result = logfile
    text = render_log(result.darshan_log)
    assert "POSIX_WRITES" in text
    assert "/nfs/scratch/mpi-io-test" in text


def test_repro_cli_fig7(capsys):
    assert repro_main(["fig7"]) == 0
    out = capsys.readouterr().out
    assert "anomalous" in out


def test_repro_cli_fig8(capsys):
    assert repro_main(["fig8"]) == 0
    out = capsys.readouterr().out
    assert "10 write phases" in out


def test_repro_cli_telemetry(capsys):
    assert repro_main([
        "telemetry", "--queue-depth", "1", "--inject-failure",
        "--fail-after", "20",
    ]) == 0
    out = capsys.readouterr().out
    assert "per-stage latency" in out
    assert "drop sites" in out
    assert (
        "reconciliation published == stored + Σ drops(site) "
        "+ in_flight_spill: EXACT" in out
    )
    assert "drop_overflow" in out
    assert "drop_daemon_failed" in out


def test_repro_cli_telemetry_check_passes(capsys):
    # A healthy run reconciles, so --check is a quiet exit 0.
    assert repro_main(["telemetry", "--check"]) == 0
    assert "FAIL" not in capsys.readouterr().out


def test_repro_cli_telemetry_check_exits_nonzero_on_violation(
    monkeypatch, capsys
):
    from repro.telemetry.report import PipelineHealthReport

    monkeypatch.setattr(PipelineHealthReport, "verify", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["telemetry", "--check"])
    assert exc.value.code == 1
    assert "FAIL: loss reconciliation violated" in capsys.readouterr().out


def test_repro_cli_chaos_check(capsys):
    assert repro_main(["chaos", "--seed", "7", "--check"]) == 0
    out = capsys.readouterr().out
    assert "applied faults" in out
    assert "daemon_crash" in out
    assert "daemon_recover" in out
    assert "link_partition" in out
    assert "slow_store_begin" in out
    assert "recovery sites" in out
    assert "EXACT" in out


def test_repro_cli_chaos_check_exits_nonzero_on_violation(monkeypatch, capsys):
    from repro.telemetry.report import PipelineHealthReport

    monkeypatch.setattr(PipelineHealthReport, "verify", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["chaos", "--seed", "7", "--check"])
    assert exc.value.code == 1
    assert "FAIL: unaccounted events" in capsys.readouterr().out


def test_repro_cli_telemetry_json(capsys):
    import json

    assert repro_main(["telemetry", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["exact"] is True
    assert payload["published"] == payload["stored"]
    assert "end_to_end" in payload["histograms"]
    assert payload["rows"] and payload["rows"][0]["exact"] is True


def test_repro_cli_chaos_json(capsys):
    import json

    assert repro_main(["chaos", "--seed", "7", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    kinds = {f["kind"] for f in payload["applied_faults"]}
    assert {"daemon_crash", "link_partition", "slow_store_begin"} <= kinds
    assert payload["health"]["exact"] is True
    assert payload["fast_lane"] is True


def test_repro_cli_diagnose_check(capsys):
    assert repro_main(["diagnose", "--seed", "42", "--check"]) == 0
    out = capsys.readouterr().out
    assert "incident log" in out
    assert "fault detection scorecard" in out
    assert "recall=100%" in out
    assert "clean-run control: 0 alert(s) (OK)" in out
    assert "OK: every fault class detected; clean run silent" in out


def test_repro_cli_diagnose_json(capsys):
    import json

    assert repro_main(["diagnose", "--seed", "42", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["score"]["ok"] is True
    assert payload["score"]["classes"] == {
        "daemon_crash": True, "link_degrade": True, "slow_store": True,
    }
    assert payload["clean_run_alerts"] == 0
    assert payload["incidents"]
    for d in payload["score"]["detections"]:
        assert d["detected"] and d["detection_latency_s"] > 0


def test_repro_cli_diagnose_check_exits_nonzero_when_undetected(
    monkeypatch, capsys
):
    from repro.diagnosis import DiagnosisScore

    monkeypatch.setattr(DiagnosisScore, "ok", lambda self: False)
    with pytest.raises(SystemExit) as exc:
        repro_main(["diagnose", "--seed", "42", "--check"])
    assert exc.value.code == 1
    assert "FAIL" in capsys.readouterr().out


def test_repro_cli_profile(capsys):
    assert repro_main(["profile"]) == 0
    out = capsys.readouterr().out
    assert "pipeline sim-time profile" in out
    assert "connector" in out and "forwarder" in out
    assert "EXACT" in out


def test_repro_cli_profile_json(capsys):
    import json

    assert repro_main(["profile", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["reconciles"] is True
    assert payload["messages"] > 0
    stages = {c["stage"] for c in payload["components"]}
    assert {"publish", "forward", "ingest"} <= stages


def test_repro_cli_unknown_command():
    with pytest.raises(SystemExit):
        repro_main(["frobnicate"])
