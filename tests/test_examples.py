"""Smoke tests: the shipped examples must run end to end.

Each example's ``main()`` is executed directly (stdout captured); the
slowest campaign-driving examples are exercised at their default scale
since they already complete in tens of seconds.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _load(name: str):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


def test_quickstart_runs(capsys):
    _load("quickstart").main()
    out = capsys.readouterr().out
    assert "connector published" in out
    assert "rank 0 timeline" in out
    assert "darshan-parser style totals" in out


def test_fleet_from_config_runs(capsys):
    _load("fleet_from_config").main()
    out = capsys.readouterr().out
    assert "6 daemons" in out
    assert "CSV store on shirley received 5 messages" in out


def test_darshan_logs_runs(capsys):
    _load("darshan_logs").main()
    out = capsys.readouterr().out
    assert "modules: H5D, H5F, LUSTRE, POSIX" in out
    assert "DXT segment traces" in out


def test_variability_dashboard_runs(capsys):
    _load("variability_dashboard").main()
    out = capsys.readouterr().out
    assert "anomalous job detected" in out
    assert "10 write phases" in out
    assert "congestion incident" in out


def test_cross_app_comparison_runs(capsys):
    _load("cross_app_comparison").main()
    out = capsys.readouterr().out
    assert "small-op-streaming" in out
    assert "high" in out


def test_system_correlation_runs(capsys):
    _load("system_correlation").main()
    out = capsys.readouterr().out
    assert "EXPLAINS the I/O variability" in out


def test_trace_drilldown_runs(capsys):
    _load("trace_drilldown").main()
    out = capsys.readouterr().out
    assert "== retention ==" in out
    assert "exemplar drill-down" in out
    assert "== gating chain ==" in out
    assert "exact: yes" in out
    assert "a retained dropped trace" in out
    assert "slowest retained traces" in out
    assert "critical-path flame" in out
    assert "rollup reconciles with sim-time profile: yes" in out


def test_fleet_console_runs(capsys):
    _load("fleet_console").main()
    out = capsys.readouterr().out
    assert "== fleet readiness ==" in out
    assert "== attaway: scorecard" in out
    assert "== signal catalog (61 signals, complete) ==" in out
    assert "fleet ready: False" in out
    assert "worst: attaway" in out
    assert "OpenMetrics exposition:" in out
    assert "catalog complete" in out


def test_explain_bottleneck_runs(capsys):
    _load("explain_bottleneck").main()
    out = capsys.readouterr().out
    assert "applied faults (ground truth)" in out
    assert "== feature vector (highlights) ==" in out
    assert "== bottleneck verdicts (job" in out
    assert "== classification scorecard ==" in out
    assert "recall=100% precision=100%" in out
    assert "clean-run control: primary verdict 'healthy' (OK)" in out
    assert "flight-recorder verdicts stream:" in out


def test_live_diagnosis_runs(capsys):
    _load("live_diagnosis").main()
    out = capsys.readouterr().out
    assert "applied faults (ground truth)" in out
    assert "incident log" in out
    assert "fault detection scorecard" in out
    assert "recall=100%" in out
    assert "pipeline sim-time profile" in out
    assert "EXACT" in out


def test_incident_forensics_runs(capsys):
    _load("incident_forensics").main()
    out = capsys.readouterr().out
    assert "flight recorder after the chaos campaign" in out
    assert "[ok]" in out and "BROKEN" not in out
    assert "fb-0: alert_firing" in out
    assert "first divergence: stream" in out
    assert "every fault class matched; every ring reconciles" in out
