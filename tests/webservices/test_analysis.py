"""Tests for the figure analysis modules over synthetic event rows."""

import numpy as np
import pytest

from repro.webservices import (
    DataFrame,
    count_write_phases,
    detect_anomalous_jobs,
    duration_stats_per_job,
    op_counts_with_ci,
    ops_per_node,
    rows_to_dataframe,
    throughput_series,
    timeline,
)
from repro.webservices.dataframe import DataFrameError


def _rows():
    """Two jobs; job 2 has pathologically slow reads (the Fig 7 anomaly)."""
    rows = []
    t = 1_650_000_000.0
    for job in (1, 2):
        for rank in range(2):
            node = f"nid{rank:05d}"
            rows.append(_row(job, rank, node, "open", t, 0.001, 0))
            for k in range(10):
                t += 1.0
                rows.append(_row(job, rank, node, "write", t, 0.05, 2**20))
            for k in range(5):
                t += 1.0
                dur = 6.75 if job == 2 else 0.05
                rows.append(_row(job, rank, node, "read", t, dur, 2**19))
            rows.append(_row(job, rank, node, "close", t + 1, 0.001, 0))
        t += 100.0
    return rows


def _row(job, rank, node, op, ts, dur, nbytes):
    return {
        "job_id": job,
        "rank": rank,
        "ProducerName": node,
        "op": op,
        "timestamp": ts,
        "seg_dur": dur,
        "seg_len": nbytes,
        "module": "POSIX",
    }


@pytest.fixture
def df():
    return rows_to_dataframe(_rows())


def test_rows_to_dataframe_empty_rejected():
    with pytest.raises(DataFrameError):
        rows_to_dataframe([])


# --------------------------------------------------------------- Figure 5


def test_op_counts_means(df):
    counts = op_counts_with_ci(df)
    # Per job: 2 opens, 20 writes, 10 reads, 2 closes.
    assert counts["open"]["mean"] == pytest.approx(2.0)
    assert counts["write"]["mean"] == pytest.approx(20.0)
    assert counts["read"]["mean"] == pytest.approx(10.0)
    assert counts["close"]["mean"] == pytest.approx(2.0)
    assert counts["write"]["ci"] == 0.0  # identical across jobs
    assert counts["write"]["per_job"] == {1: 20, 2: 20}


def test_op_counts_ci_nonzero_when_jobs_differ(df):
    rows = _rows() + [_row(1, 0, "nid00000", "write", 2e9, 0.05, 10)] * 5
    counts = op_counts_with_ci(rows_to_dataframe(rows))
    assert counts["write"]["ci"] > 0


# --------------------------------------------------------------- Figure 6


def test_ops_per_node_counts(df):
    per_node = ops_per_node(df)
    assert per_node[1]["nid00000"]["open"] == 1
    assert per_node[1]["nid00001"]["close"] == 1
    assert set(per_node) == {1, 2}
    # Only open/close are counted by default.
    assert "write" not in per_node[1]["nid00000"]


def test_ops_per_node_custom_ops(df):
    per_node = ops_per_node(df, ops=("write",))
    assert per_node[2]["nid00000"]["write"] == 10


# --------------------------------------------------------------- Figure 7


def test_duration_stats_expose_anomaly(df):
    stats = duration_stats_per_job(df)
    assert stats[1]["read"]["mean"] == pytest.approx(0.05)
    assert stats[2]["read"]["mean"] == pytest.approx(6.75)
    assert stats[1]["write"]["count"] == 20
    # The paper's ratio: job 2 reads are >100x slower.
    assert stats[2]["read"]["mean"] / stats[1]["read"]["mean"] > 100


def test_detect_anomalous_jobs(df):
    stats = duration_stats_per_job(df)
    assert detect_anomalous_jobs(stats, op="read") == [2]
    assert detect_anomalous_jobs(stats, op="write") == []


def test_detect_anomalous_jobs_too_few():
    assert detect_anomalous_jobs({1: {"read": {"mean": 1.0}}}) == []


# --------------------------------------------------------------- Figure 8


def test_timeline_relative_times(df):
    tl = timeline(df, job_id=1)
    assert tl["t"].min() == 0.0
    assert len(tl["t"]) == 30  # 20 writes + 10 reads (2 ranks)
    assert set(tl["op"].tolist()) == {"read", "write"}
    assert tl["t0"] >= 1_650_000_000.0


def test_timeline_missing_job_rejected(df):
    with pytest.raises(DataFrameError):
        timeline(df, job_id=99)


def test_count_write_phases_detects_gaps():
    tl = {
        "op": np.asarray(["write"] * 6, dtype=object),
        "t": np.asarray([0.0, 0.5, 1.0, 50.0, 50.5, 100.0]),
    }
    assert count_write_phases(tl, gap_s=2.0) == 3


def test_count_write_phases_empty():
    tl = {"op": np.asarray(["read"], dtype=object), "t": np.asarray([1.0])}
    assert count_write_phases(tl) == 0


# --------------------------------------------------------------- Figure 9


def test_throughput_series_buckets(df):
    series = throughput_series(df, job_id=1, bucket_s=5.0)
    assert "read" in series and "write" in series
    total_write_bytes = series["write"]["bytes"].sum()
    assert total_write_bytes == 20 * 2**20
    total_read_bytes = series["read"]["bytes"].sum()
    assert total_read_bytes == 10 * 2**19
    assert series["write"]["count"].sum() == 20
    assert len(series["edges"]) == len(series["write"]["count"]) + 1


def test_throughput_series_write_heavier_than_read(df):
    """Figure 9's visual: write volume exceeds read volume."""
    series = throughput_series(df, job_id=2, bucket_s=10.0)
    assert series["write"]["bytes"].sum() > series["read"]["bytes"].sum()


def test_throughput_series_validation(df):
    with pytest.raises(ValueError):
        throughput_series(df, job_id=1, bucket_s=0)
    with pytest.raises(DataFrameError):
        throughput_series(df, job_id=42)
