"""The fleet console: pages, rendering, and the catalog verdict.

A hand-built two-cluster report (one clean, one degraded) exercises
every page without running a scan, so these tests stay fast and pin
exactly what the console shows: the readiness table with per-component
deductions, the drill-down tables, and the signal-catalog page whose
title carries the completeness verdict.
"""

from dataclasses import dataclass, field

import pytest

from repro.diagnosis import default_catalog
from repro.fleet import (
    COMPONENT_WEIGHTS,
    ComponentDeduction,
    HealthScore,
    NodeProbeStats,
    ProbeReport,
)
from repro.webservices import FleetConsole


@dataclass
class _Alert:
    rule: str
    severity: str
    state: str = "resolved"
    peak_value: float = 1.0
    detail: str = "it happened"


@dataclass
class _Cluster:
    name: str
    score: HealthScore
    probe_report: ProbeReport
    incidents: list = field(default_factory=list)


def _score(name, per_component):
    deductions = tuple(
        ComponentDeduction(comp, weight, per_component.get(comp, 0),
                           min(per_component.get(comp, 0), weight), "")
        for comp, weight in COMPONENT_WEIGHTS.items()
    )
    total = sum(d.deduction for d in deductions)
    return HealthScore(cluster=name, score=100 - total,
                       deductions=deductions)


def _probe_report(lost=0):
    nodes = [
        NodeProbeStats(node="node00", probes=4, lost=lost,
                       mean_latency_s=0.001, worst_latency_s=0.002,
                       reasons=("L2 aggregator down",) if lost else ()),
        NodeProbeStats(node="node01", probes=4, lost=0,
                       mean_latency_s=0.001, worst_latency_s=0.001,
                       reasons=()),
    ]
    return ProbeReport(nodes=nodes, stragglers=[],
                       median_latency_s=0.001, fold=2.0, sweeps=4)


def _report():
    clean = _Cluster(name="alpha", score=_score("alpha", {}),
                     probe_report=_probe_report())
    sick = _Cluster(
        name="beta",
        score=_score("beta", {"probes": 30, "alerts": 10}),
        probe_report=_probe_report(lost=2),
        incidents=[_Alert("daemon_down", "critical", state="firing",
                          peak_value=1.0, detail="l1 dead")],
    )
    return [clean, sick]


@pytest.fixture
def console():
    return FleetConsole(_report())


def test_overview_rows_carry_scores_and_deductions(console):
    (panel,) = console.overview_panels()
    assert panel.title == "fleet readiness"
    rows = {r["cluster"]: r for r in panel.payload}
    assert rows["alpha"]["score"] == 100
    assert rows["alpha"]["grade"] == "A"
    assert rows["alpha"]["ready"] == "yes"
    assert rows["beta"]["score"] == 60
    assert rows["beta"]["ready"] == "NO"
    assert rows["beta"]["probes"] == "-30"
    assert rows["beta"]["alerts"] == "-10"
    assert rows["beta"]["ledger"] == "-0"


def test_cluster_drilldown_panels(console):
    score_panel, probe_panel, incident_panel = console.cluster_panels("beta")
    assert score_panel.title == "beta: scorecard (60/100, grade C)"
    assert [r["component"] for r in score_panel.payload] == list(
        COMPONENT_WEIGHTS
    )
    assert probe_panel.title == "beta: probe scan"
    assert probe_panel.payload[0]["verdict"] == "LOST"
    assert incident_panel.title == "beta: incidents"
    (incident,) = incident_panel.payload
    assert incident["rule"] == "daemon_down"
    assert incident["severity"] == "critical"
    assert incident["state"] == "firing"
    assert incident["value"] == "1"
    assert incident["detail"] == "l1 dead"


def test_unknown_cluster_raises_keyerror(console):
    with pytest.raises(KeyError, match="no scanned cluster"):
        console.cluster_panels("gamma")


def test_catalog_page_reports_complete(console):
    (panel,) = console.catalog_panels()
    assert panel.title == "signal catalog (61 signals, complete)"
    assert len(panel.payload) == 61


def test_catalog_page_reports_missing(monkeypatch):
    from repro.diagnosis import engine

    console = FleetConsole((), default_catalog())
    monkeypatch.setattr(
        engine, "SAMPLED_SERIES",
        engine.SAMPLED_SERIES + (("ghost_series", "u", "d"),),
    )
    catalog_panel, missing_panel = console.catalog_panels()
    assert "MISSING 1" in catalog_panel.title
    assert missing_panel.title == "uncatalogued signals"
    assert missing_panel.payload == [{"missing": "ghost_series"}]


def test_panels_order_overview_drilldowns_catalog(console):
    panels = console.panels()
    titles = [p.title for p in panels]
    assert titles[0] == "fleet readiness"
    assert titles[1].startswith("alpha: scorecard")
    assert titles[4].startswith("beta: scorecard")
    assert titles[-1].startswith("signal catalog")
    assert len(panels) == 1 + 2 * 3 + 1


def test_render_text_contains_every_page(console):
    text = console.render_text(width=100)
    assert "== fleet readiness ==" in text
    assert "== beta: scorecard (60/100, grade C) ==" in text
    assert "== signal catalog (61 signals, complete) ==" in text
    assert "STRAGGLER" not in text and "LOST" in text


def test_to_html_renders_tables(console):
    page = console.to_html()
    assert page.startswith("<!DOCTYPE html>")
    assert "<title>Fleet console</title>" in page
    # Every non-empty table page renders as a table; alpha's empty
    # incident log renders as the "(no rows)" placeholder instead.
    assert page.count("<table>") == len(console.panels()) - 1
    assert "(no rows)" in page
    assert "daemon_down" in page


def test_empty_report_still_renders():
    console = FleetConsole(())
    panels = console.panels()
    assert len(panels) == 2  # overview (no rows) + catalog
    text = console.render_text()
    assert "(no rows)" in text
    assert "signal catalog" in text
