"""Tests for the I/O-vs-system-metric correlation analysis."""

import numpy as np
import pytest

from repro.webservices import DataFrame, bucket_series, correlate_durations_with_metric
from repro.webservices.dataframe import DataFrameError


def _io_df(times, durations, op="write"):
    n = len(times)
    return DataFrame(
        {
            "timestamp": np.asarray(times, dtype=float),
            "seg_dur": np.asarray(durations, dtype=float),
            "op": np.asarray([op] * n, dtype=object),
        }
    )


def _metric_rows(times, values, metric="load_factor"):
    return [
        {"metric": metric, "timestamp": float(t), "value": float(v)}
        for t, v in zip(times, values)
    ]


def test_bucket_series_means():
    edges = np.asarray([0.0, 10.0, 20.0])
    means = bucket_series(
        np.asarray([1.0, 2.0, 15.0]), np.asarray([2.0, 4.0, 10.0]), edges
    )
    assert means[0] == pytest.approx(3.0)
    assert means[1] == pytest.approx(10.0)


def test_bucket_series_empty_bucket_is_nan():
    edges = np.asarray([0.0, 10.0, 20.0])
    means = bucket_series(np.asarray([1.0]), np.asarray([5.0]), edges)
    assert np.isnan(means[1])


def test_bucket_series_needs_buckets():
    with pytest.raises(ValueError):
        bucket_series(np.asarray([1.0]), np.asarray([1.0]), np.asarray([0.0]))


def test_perfectly_correlated_metric_detected():
    rng = np.random.default_rng(0)
    t = np.sort(rng.uniform(0, 1000, 500))
    load = 1.0 + np.sin(t / 100.0) ** 2 * 3.0
    durations = load * 0.1  # durations scale with load
    io = _io_df(t, durations)
    metrics = _metric_rows(t, load)
    result = correlate_durations_with_metric(io, metrics, bucket_s=50.0)
    assert result["pearson_r"] > 0.95
    assert result["p_value"] < 0.001
    assert result["n_buckets"] >= 3


def test_uncorrelated_metric_near_zero():
    rng = np.random.default_rng(1)
    t = np.sort(rng.uniform(0, 1000, 800))
    io = _io_df(t, rng.uniform(0.1, 0.2, len(t)))
    metrics = _metric_rows(t, rng.uniform(1.0, 5.0, len(t)))
    result = correlate_durations_with_metric(io, metrics, bucket_s=50.0)
    assert abs(result["pearson_r"]) < 0.5


def test_constant_series_gives_zero_correlation():
    t = np.linspace(0, 100, 50)
    io = _io_df(t, np.full(50, 0.1))
    metrics = _metric_rows(t, np.full(50, 2.0))
    result = correlate_durations_with_metric(io, metrics, bucket_s=10.0)
    assert result["pearson_r"] == 0.0
    assert result["p_value"] == 1.0


def test_constant_series_flagged_degenerate_not_nan():
    # Regression: pearsonr on a constant series used to surface NaN.
    # Either side being flat must yield the defined (0.0, 1.0) result
    # with degenerate=True so callers can tell "no information" apart
    # from "no correlation".
    t = np.linspace(0, 100, 50)
    flat_io = _io_df(t, np.full(50, 0.1))
    varying = _metric_rows(t, 1.0 + np.sin(t / 10.0) ** 2)
    for io, metrics in (
        (flat_io, varying),  # constant durations
        (flat_io, _metric_rows(t, np.full(50, 2.0))),  # both constant
        (_io_df(t, 0.1 + t / 1000.0), _metric_rows(t, np.full(50, 2.0))),
    ):
        result = correlate_durations_with_metric(io, metrics, bucket_s=10.0)
        assert not np.isnan(result["pearson_r"])
        assert not np.isnan(result["p_value"])
        assert result["pearson_r"] == 0.0
        assert result["p_value"] == 1.0
        assert result["degenerate"] is True


def test_varying_series_not_degenerate():
    rng = np.random.default_rng(0)
    t = np.sort(rng.uniform(0, 1000, 500))
    load = 1.0 + np.sin(t / 100.0) ** 2 * 3.0
    result = correlate_durations_with_metric(
        _io_df(t, load * 0.1), _metric_rows(t, load), bucket_s=50.0
    )
    assert result["degenerate"] is False


def test_filters_by_op():
    t = np.linspace(0, 100, 20)
    io = _io_df(t, np.full(20, 0.1), op="open")
    metrics = _metric_rows(t, np.full(20, 1.0))
    with pytest.raises(DataFrameError, match="no I/O events"):
        correlate_durations_with_metric(io, metrics, ops=("read", "write"))


def test_requires_metric_samples():
    t = np.linspace(0, 100, 20)
    io = _io_df(t, np.full(20, 0.1))
    with pytest.raises(DataFrameError, match="no samples"):
        correlate_durations_with_metric(io, [], metric="load_factor")


def test_requires_enough_joint_buckets():
    io = _io_df([0.0, 1.0], [0.1, 0.2])
    metrics = _metric_rows([0.5], [1.0])
    with pytest.raises(DataFrameError, match="joint buckets"):
        correlate_durations_with_metric(io, metrics, bucket_s=100.0)


def test_bucket_validation():
    io = _io_df([0.0], [0.1])
    with pytest.raises(ValueError):
        correlate_durations_with_metric(io, _metric_rows([0.0], [1.0]), bucket_s=0)
