"""Tests for the mini column-store DataFrame."""

import numpy as np
import pytest

from repro.webservices import DataFrame, DataFrameError


@pytest.fixture
def df():
    return DataFrame(
        {
            "job": [1, 1, 1, 2, 2, 2],
            "op": np.asarray(["r", "w", "w", "r", "w", "r"], dtype=object),
            "dur": [0.1, 0.2, 0.3, 0.4, 0.5, 0.6],
        }
    )


def test_construction_and_len(df):
    assert len(df) == 6
    assert df.columns == ["job", "op", "dur"]


def test_length_mismatch_rejected():
    with pytest.raises(DataFrameError):
        DataFrame({"a": [1, 2], "b": [1]})


def test_empty_columns_rejected():
    with pytest.raises(DataFrameError):
        DataFrame({})


def test_non_1d_rejected():
    with pytest.raises(DataFrameError):
        DataFrame({"a": np.zeros((2, 2))})


def test_from_records_infers_types():
    df = DataFrame.from_records(
        [{"x": 1, "s": "a"}, {"x": 2, "s": "b"}]
    )
    assert df.col("x").dtype.kind == "i"
    assert df.col("s").dtype == object


def test_from_records_promotes_to_float():
    df = DataFrame.from_records([{"x": 1}, {"x": 2.5}])
    assert df.col("x").dtype.kind == "f"


def test_from_records_empty_rejected():
    with pytest.raises(DataFrameError):
        DataFrame.from_records([])


def test_missing_column_has_helpful_error(df):
    with pytest.raises(DataFrameError, match="available"):
        df.col("ghost")


def test_getitem(df):
    assert df["job"][0] == 1


def test_filter_with_mask(df):
    out = df.filter(df["job"] == 2)
    assert len(out) == 3
    assert set(out["op"].tolist()) == {"r", "w"}


def test_filter_with_predicate(df):
    out = df.filter(lambda row: row["dur"] > 0.35)
    assert len(out) == 3


def test_filter_mask_length_checked(df):
    with pytest.raises(DataFrameError):
        df.filter(np.asarray([True]))


def test_select(df):
    out = df.select("job", "dur")
    assert out.columns == ["job", "dur"]


def test_assign(df):
    out = df.assign("double", df["dur"] * 2)
    assert out["double"][1] == pytest.approx(0.4)
    with pytest.raises(DataFrameError):
        df.assign("bad", [1])


def test_sort_by_primary_key(df):
    out = df.sort_by("dur", reverse=True)
    assert out["dur"][0] == pytest.approx(0.6)


def test_sort_by_multiple_keys():
    df = DataFrame({"a": [2, 1, 2, 1], "b": [1, 2, 0, 0]})
    out = df.sort_by("a", "b")
    assert out["a"].tolist() == [1, 1, 2, 2]
    assert out["b"].tolist() == [0, 2, 0, 1]


def test_unique(df):
    assert df.unique("job").tolist() == [1, 2]


def test_head(df):
    assert len(df.head(2)) == 2


def test_to_records_roundtrip(df):
    recs = df.to_records()
    back = DataFrame.from_records(recs)
    assert back["dur"].tolist() == df["dur"].tolist()


# ------------------------------------------------------------------ groupby


def test_groupby_size(df):
    out = df.groupby("job").size()
    assert dict(zip(out["job"].tolist(), out["n"].tolist())) == {1: 3, 2: 3}


def test_groupby_two_keys(df):
    out = df.groupby("job", "op").size()
    assert len(out) == 4


def test_groupby_agg_named(df):
    out = df.groupby("job").agg({"dur": "sum"})
    sums = dict(zip(out["job"].tolist(), out["dur_sum"].tolist()))
    assert sums[1] == pytest.approx(0.6)
    assert sums[2] == pytest.approx(1.5)


def test_groupby_agg_mean_min_max_median_std(df):
    out = df.groupby("job").agg({"dur": "mean"})
    assert out["dur_mean"].tolist() == pytest.approx([0.2, 0.5])
    for how in ("min", "max", "median", "std", "count"):
        df.groupby("job").agg({"dur": how})  # must not raise


def test_groupby_agg_callable(df):
    out = df.groupby("job").agg({"dur": lambda a: float(a.max() - a.min())})
    assert out.columns[-1].startswith("dur_")


def test_groupby_agg_unknown_rejected(df):
    with pytest.raises(DataFrameError):
        df.groupby("job").agg({"dur": "variance"})


def test_groupby_requires_key(df):
    with pytest.raises(DataFrameError):
        df.groupby()


def test_groupby_apply(df):
    out = df.groupby("op").apply(lambda sub: len(sub))
    assert out[("r",)] == 3
    assert out[("w",)] == 3


def test_groupby_std_single_row():
    df = DataFrame({"k": [1], "v": [2.0]})
    out = df.groupby("k").agg({"v": "std"})
    assert out["v_std"][0] == 0.0
