"""Tests for the headless Grafana layer."""

import pytest

from repro.dsos import DARSHAN_DATA_SCHEMA, DsosClient, DsosCluster
from repro.webservices import (
    Dashboard,
    DsosDataSource,
    Panel,
    op_counts_with_ci,
    render_ascii,
    throughput_series,
)


def _object(job, rank, op, ts, nbytes):
    obj = {a.name: -1 for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "int"}
    obj.update(
        {a.name: "N/A" for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "string"}
    )
    obj.update(
        {a.name: -1.0 for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "float"}
    )
    obj.update(
        {
            "job_id": job,
            "rank": rank,
            "op": op,
            "timestamp": float(ts),
            "seg_len": nbytes,
            "seg_dur": 0.01,
            "module": "POSIX",
            "ProducerName": f"nid{rank:05d}",
        }
    )
    return obj


@pytest.fixture
def client():
    c = DsosClient(DsosCluster("shirley", 2))
    c.ensure_schema(DARSHAN_DATA_SCHEMA)
    t = 1_650_000_000.0
    for job in (101, 102):
        for rank in range(2):
            c.insert("darshan_data", _object(job, rank, "open", t, 0))
            for k in range(8):
                c.insert("darshan_data", _object(job, rank, "write", t + k, 2**20))
            c.insert("darshan_data", _object(job, rank, "close", t + 9, 0))
    return c


def test_data_source_queries_to_dataframe(client):
    source = DsosDataSource(client)
    df = source.query(index="job_rank_time", prefix=(101,))
    assert len(df) == 20
    assert "timestamp" in df.columns


def test_dashboard_renders_panels(client):
    source = DsosDataSource(client)
    dash = Dashboard(title="Darshan LDMS Integration")
    dash.add_panel(
        Panel(
            title="I/O operation counts",
            query={"index": "job_rank_time"},
            analysis=op_counts_with_ci,
            viz="bars",
        )
    )
    dash.add_panel(
        Panel(
            title="Job 101 throughput",
            query={"index": "job_rank_time", "prefix": (101,)},
            analysis=lambda df: throughput_series(df, job_id=101, bucket_s=2.0),
            viz="timeseries",
        )
    )
    rendered = dash.render(source)
    assert len(rendered) == 2
    bars, series = rendered
    assert bars.payload["write"]["mean"] == pytest.approx(16.0)
    assert bars.rows_queried == 40
    assert series.payload["write"]["bytes"].sum() == 16 * 2**20


def test_render_ascii_bars(client):
    source = DsosDataSource(client)
    dash = Dashboard(title="t")
    dash.add_panel(
        Panel(title="ops", query={"index": "job_rank_time"}, analysis=op_counts_with_ci, viz="bars")
    )
    out = render_ascii(dash.render(source)[0])
    assert "== ops ==" in out
    assert "write" in out
    assert "#" in out


def test_render_ascii_timeseries(client):
    source = DsosDataSource(client)
    dash = Dashboard(title="t")
    dash.add_panel(
        Panel(
            title="throughput",
            query={"index": "job_rank_time", "prefix": (102,)},
            analysis=lambda df: throughput_series(df, job_id=102, bucket_s=2.0),
        )
    )
    out = render_ascii(dash.render(source)[0])
    assert "write (bytes/bucket)" in out


def test_render_ascii_fallback():
    from repro.webservices import PanelData

    out = render_ascii(PanelData(title="x", viz="table", payload={"weird": 1}))
    assert "weird" in out


# --------------------------------------------------------- edge cases


def _panel(payload, viz="table"):
    from repro.webservices import PanelData

    return PanelData(title="edge", viz=viz, payload=payload)


def test_render_ascii_empty_payloads():
    assert "(no rows)" in render_ascii(_panel([]))
    assert "(no rows)" in render_ascii(_panel({}))
    # An all-zero histogram still renders its (empty) marker.
    out = render_ascii(_panel({"bin_edges": [1e-6, 1e-5], "counts": [0]}))
    assert "(empty)" in out


def test_render_ascii_single_point_series():
    import numpy as np

    out = render_ascii(_panel(
        {"edges": np.array([0.0, 1.0]), "write": {"bytes": np.array([5.0])}},
        viz="timeseries",
    ))
    assert "write (bytes/bucket)" in out
    # One bucket, positive value -> exactly one full-height cell.
    assert out.splitlines()[-1] == "█"


def test_render_ascii_nan_and_none_means():
    nan = float("nan")
    out = render_ascii(_panel(
        {
            "ok": {"mean": 4.0, "ci": 0.5},
            "nan": {"mean": nan, "ci": 0.1},
            "inf": {"mean": float("inf")},
            "none": {"mean": None},
            "nan_ci": {"mean": 2.0, "ci": nan},
        },
        viz="bars",
    ))
    lines = {ln.split("|")[0].strip(): ln for ln in out.splitlines()[1:]}
    assert "#### " in lines["ok"] or "#" in lines["ok"]
    assert "(no data)" in lines["nan"]
    assert "(no data)" in lines["inf"]
    assert "(no data)" in lines["none"]
    # A NaN ci must not poison a finite mean's bar.
    assert "±0.0" in lines["nan_ci"]
    # The finite max sets the scale: 'ok' gets the longest bar.
    assert lines["ok"].count("#") > lines["nan_ci"].count("#")


def test_render_ascii_none_and_nan_table_cells():
    out = render_ascii(_panel([
        {"a": 1, "b": None},
        {"a": float("nan"), "b": "x"},
        {"a": 3},  # missing key entirely
    ]))
    assert "None" in out
    assert "nan" in out
    assert out.count("\n") == 4  # title + header + three rows
