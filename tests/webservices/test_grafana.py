"""Tests for the headless Grafana layer."""

import pytest

from repro.dsos import DARSHAN_DATA_SCHEMA, DsosClient, DsosCluster
from repro.webservices import (
    Dashboard,
    DsosDataSource,
    Panel,
    op_counts_with_ci,
    render_ascii,
    throughput_series,
)


def _object(job, rank, op, ts, nbytes):
    obj = {a.name: -1 for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "int"}
    obj.update(
        {a.name: "N/A" for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "string"}
    )
    obj.update(
        {a.name: -1.0 for a in DARSHAN_DATA_SCHEMA.attrs.values() if a.type == "float"}
    )
    obj.update(
        {
            "job_id": job,
            "rank": rank,
            "op": op,
            "timestamp": float(ts),
            "seg_len": nbytes,
            "seg_dur": 0.01,
            "module": "POSIX",
            "ProducerName": f"nid{rank:05d}",
        }
    )
    return obj


@pytest.fixture
def client():
    c = DsosClient(DsosCluster("shirley", 2))
    c.ensure_schema(DARSHAN_DATA_SCHEMA)
    t = 1_650_000_000.0
    for job in (101, 102):
        for rank in range(2):
            c.insert("darshan_data", _object(job, rank, "open", t, 0))
            for k in range(8):
                c.insert("darshan_data", _object(job, rank, "write", t + k, 2**20))
            c.insert("darshan_data", _object(job, rank, "close", t + 9, 0))
    return c


def test_data_source_queries_to_dataframe(client):
    source = DsosDataSource(client)
    df = source.query(index="job_rank_time", prefix=(101,))
    assert len(df) == 20
    assert "timestamp" in df.columns


def test_dashboard_renders_panels(client):
    source = DsosDataSource(client)
    dash = Dashboard(title="Darshan LDMS Integration")
    dash.add_panel(
        Panel(
            title="I/O operation counts",
            query={"index": "job_rank_time"},
            analysis=op_counts_with_ci,
            viz="bars",
        )
    )
    dash.add_panel(
        Panel(
            title="Job 101 throughput",
            query={"index": "job_rank_time", "prefix": (101,)},
            analysis=lambda df: throughput_series(df, job_id=101, bucket_s=2.0),
            viz="timeseries",
        )
    )
    rendered = dash.render(source)
    assert len(rendered) == 2
    bars, series = rendered
    assert bars.payload["write"]["mean"] == pytest.approx(16.0)
    assert bars.rows_queried == 40
    assert series.payload["write"]["bytes"].sum() == 16 * 2**20


def test_render_ascii_bars(client):
    source = DsosDataSource(client)
    dash = Dashboard(title="t")
    dash.add_panel(
        Panel(title="ops", query={"index": "job_rank_time"}, analysis=op_counts_with_ci, viz="bars")
    )
    out = render_ascii(dash.render(source)[0])
    assert "== ops ==" in out
    assert "write" in out
    assert "#" in out


def test_render_ascii_timeseries(client):
    source = DsosDataSource(client)
    dash = Dashboard(title="t")
    dash.add_panel(
        Panel(
            title="throughput",
            query={"index": "job_rank_time", "prefix": (102,)},
            analysis=lambda df: throughput_series(df, job_id=102, bucket_s=2.0),
        )
    )
    out = render_ascii(dash.render(source)[0])
    assert "write (bytes/bucket)" in out


def test_render_ascii_fallback():
    from repro.webservices import PanelData

    out = render_ascii(PanelData(title="x", viz="table", payload={"weird": 1}))
    assert "weird" in out
