"""Tests for the static HTML dashboard renderer."""

import numpy as np
import pytest

from repro.webservices import PanelData, render_html


def _bars_panel():
    return PanelData(
        title="op counts",
        viz="bars",
        payload={
            "write": {"mean": 100.0, "ci": 10.0},
            "read": {"mean": 50.0, "ci": 0.0},
        },
        rows_queried=150,
    )


def _series_panel():
    return PanelData(
        title="throughput",
        viz="timeseries",
        payload={
            "edges": np.asarray([0.0, 10.0, 20.0, 30.0]),
            "write": {"bytes": np.asarray([1e6, 2e6, 0.0]), "count": np.asarray([1, 2, 0])},
            "read": {"bytes": np.asarray([0.0, 0.0, 3e6]), "count": np.asarray([0, 0, 3])},
        },
        rows_queried=6,
    )


def test_page_structure():
    page = render_html("Darshan LDMS Integration", [_bars_panel(), _series_panel()])
    assert page.startswith("<!DOCTYPE html>")
    assert "<title>Darshan LDMS Integration</title>" in page
    assert page.count("<section") == 2
    assert page.count("</svg>") == 2


def test_bars_panel_has_rects_and_error_bars():
    page = render_html("t", [_bars_panel()])
    assert page.count("<rect") >= 2
    assert "<line" in page  # CI whisker for the write bar
    assert "op counts" in page
    assert "150 rows queried" in page


def test_series_panel_has_polylines_and_legend():
    page = render_html("t", [_series_panel()])
    assert page.count("<polyline") == 2
    assert "#3274d9" in page  # write color
    assert "#56a64b" in page  # read color


def test_fallback_panel_renders_pre():
    page = render_html("t", [PanelData(title="odd", viz="table", payload=[1, 2, 3])])
    assert "<pre>[1, 2, 3]</pre>" in page


def test_titles_are_escaped():
    page = render_html(
        "<script>alert(1)</script>",
        [PanelData(title="a<b>c", viz="bars", payload=None)],
    )
    assert "<script>alert" not in page
    assert "&lt;script&gt;" in page
    assert "a&lt;b&gt;c" in page


# ------------------------------------------------- degenerate payloads
#
# The console feeds the renderer whatever a scan produced — including
# empty result sets and all-NaN statistics.  None of those may leak
# "nan" into SVG coordinates or crash the page.


def test_zero_panels_page_still_renders():
    page = render_html("empty fleet", [])
    assert page.startswith("<!DOCTYPE html>")
    assert "<title>empty fleet</title>" in page
    assert "<section" not in page


def test_all_nan_bars_render_na_without_nan_coordinates():
    panel = PanelData(
        title="ops", viz="bars",
        payload={
            "write": {"mean": float("nan"), "ci": float("nan")},
            "read": {"mean": 50.0, "ci": 5.0},
        },
        rows_queried=2,
    )
    page = render_html("t", [panel])
    assert "n/a" in page          # the NaN bar is labelled, not drawn
    assert "nan" not in page
    assert page.count("<rect") == 2  # both bars (one zero-height)
    assert page.count("<line") == 1  # only the finite bar gets a whisker


def test_every_bar_nan_still_renders():
    panel = PanelData(
        title="ops", viz="bars",
        payload={"write": {"mean": float("nan"), "ci": 0.0}},
        rows_queried=1,
    )
    page = render_html("t", [panel])
    assert "nan" not in page and "n/a" in page


def test_all_nan_series_skips_polylines():
    nan = float("nan")
    panel = PanelData(
        title="tp", viz="timeseries",
        payload={
            "edges": np.asarray([0.0, 1.0, 2.0]),
            "write": {"bytes": np.asarray([nan, nan]), "count": np.asarray([0, 0])},
        },
        rows_queried=0,
    )
    page = render_html("t", [panel])
    assert "<polyline" not in page
    assert "nan" not in page
    assert "</svg>" in page  # still a chart, axis and legend intact


def test_partially_nan_series_skips_only_the_bad_points():
    panel = PanelData(
        title="tp", viz="timeseries",
        payload={
            "edges": np.asarray([0.0, 1.0, 2.0, 3.0]),
            "write": {"bytes": np.asarray([1e6, float("nan"), 3e6]),
                      "count": np.asarray([1, 0, 3])},
        },
        rows_queried=4,
    )
    page = render_html("t", [panel])
    assert page.count("<polyline") == 1
    assert "nan" not in page


def test_series_with_too_few_edges_shows_no_data():
    panel = PanelData(
        title="tp", viz="timeseries",
        payload={"edges": np.asarray([0.0]),
                 "write": {"bytes": np.asarray([]), "count": np.asarray([])}},
        rows_queried=0,
    )
    page = render_html("t", [panel])
    assert "(no data)" in page and "<polyline" not in page


def test_histogram_with_empty_counts_shows_no_data():
    panel = PanelData(
        title="hist", viz="histogram",
        payload={"bin_edges": [1.0], "counts": []},
        rows_queried=0,
    )
    page = render_html("t", [panel])
    assert "(no data)" in page and "<rect" not in page


def test_empty_row_table_renders_no_rows_placeholder():
    panel = PanelData(title="incidents", viz="table", payload=[],
                      rows_queried=0)
    page = render_html("t", [panel])
    assert "(no rows)" in page
    assert "<table>" not in page and "<pre>" not in page


def test_single_row_table_renders_header_and_row():
    panel = PanelData(
        title="one", viz="table",
        payload=[{"cluster": "voltrino", "score": 100}],
        rows_queried=1,
    )
    page = render_html("t", [panel])
    assert page.count("<tr>") == 2  # header + the single row
    assert "<th>cluster</th>" in page
    assert "<td>voltrino</td>" in page and "<td>100</td>" in page


def test_end_to_end_dashboard_to_html(tmp_path):
    """Real campaign -> Grafana panels -> HTML file."""
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.webservices import (
        Dashboard,
        DsosDataSource,
        Panel,
        op_counts_with_ci,
        throughput_series,
    )

    world = World(WorldConfig(seed=12, quiet=True, n_compute_nodes=4))
    result = run_job(
        world,
        MpiIoTest(n_nodes=2, ranks_per_node=2, iterations=4, block_size=2**20,
                  collective=False, sync_per_iteration=False),
        "nfs",
        connector_config=ConnectorConfig(),
    )
    source = DsosDataSource(world.dsos)
    dash = Dashboard(title="Darshan LDMS Integration")
    dash.add_panel(Panel("ops", {"index": "job_rank_time"}, op_counts_with_ci, "bars"))
    dash.add_panel(
        Panel(
            "bytes",
            {"index": "job_rank_time", "prefix": (result.job_id,)},
            lambda df: throughput_series(df, job_id=result.job_id, bucket_s=1.0),
        )
    )
    page = render_html(dash.title, dash.render(source))
    out = tmp_path / "dashboard.html"
    out.write_text(page)
    assert out.stat().st_size > 2000
    assert page.count("</svg>") == 2
