"""Tests for cross-application I/O signatures."""

import numpy as np
import pytest

from repro.webservices import (
    DataFrame,
    classify_workload,
    compare_signatures,
    io_signature,
)


def _df(ops, sizes, durs=None, t0=0.0, dt=1.0, job=1):
    n = len(ops)
    return DataFrame(
        {
            "job_id": np.full(n, job),
            "op": np.asarray(ops, dtype=object),
            "seg_len": np.asarray(sizes, dtype=float),
            "seg_dur": np.asarray(durs if durs is not None else [0.01] * n),
            "timestamp": t0 + np.arange(n) * dt,
        }
    )


def test_signature_basic_accounting():
    df = _df(
        ["open", "write", "write", "read", "close"],
        [0, 100, 200, 50, 0],
    )
    sig = io_signature(df)
    assert sig["bytes_written"] == 300
    assert sig["bytes_read"] == 50
    assert sig["n_writes"] == 2
    assert sig["n_reads"] == 1
    assert sig["n_opens"] == 1
    assert sig["mean_write_size"] == 150
    assert sig["duration_s"] == 4.0
    assert sig["event_rate_per_s"] == pytest.approx(5 / 4.0)


def test_signature_job_filter():
    df1 = _df(["write"], [10], job=1)
    df2 = _df(["write", "write"], [10, 10], job=2)
    both = DataFrame.from_records(df1.to_records() + df2.to_records())
    assert io_signature(both, job_id=2)["n_writes"] == 2
    # An unknown job is an empty-but-defined signature, not an error
    # (the explain layer feature-izes arbitrary job ids).
    sig = io_signature(both, job_id=99)
    assert sig["n_writes"] == sig["n_reads"] == 0
    assert classify_workload(sig) == "idle"


def test_signature_empty_frame_is_all_zeros():
    sig = io_signature(_df([], []))
    assert sig["n_reads"] == sig["n_writes"] == sig["n_opens"] == 0
    assert sig["bytes_read"] == sig["bytes_written"] == 0.0
    assert sig["mean_read_size"] == sig["mean_write_size"] == 0.0
    assert sig["duration_s"] == sig["event_rate_per_s"] == 0.0
    assert sig["read_write_byte_ratio"] == 0.0
    assert sig["mean_op_dur_s"] == 0.0
    assert classify_workload(sig) == "idle"


def test_signature_single_op_job_is_defined():
    sig = io_signature(_df(["write"], [100]))
    assert sig["duration_s"] == 0.0  # one timestamp: no span
    assert sig["event_rate_per_s"] == 1.0  # event count stands in
    assert sig["mean_write_size"] == 100.0
    assert np.isfinite(sig["event_rate_per_s"])


def test_signature_zero_duration_job_is_defined():
    # Several events on the same timestamp: duration 0, the event
    # count stands in for the rate (finite, never a ZeroDivisionError).
    sig = io_signature(_df(["write", "read"], [10, 20], dt=0.0))
    assert sig["duration_s"] == 0.0
    assert sig["event_rate_per_s"] == 2.0
    assert sig["read_write_byte_ratio"] == 20.0 / 10.0


def test_classify_idle_wins_over_other_classes():
    sig = io_signature(_df([], []))
    assert classify_workload(sig) == "idle"


def test_signature_no_writes_ratio_inf():
    sig = io_signature(_df(["read"], [100]))
    assert sig["read_write_byte_ratio"] == float("inf")


def test_classify_metadata_intensive():
    sig = io_signature(_df(["open"] * 5 + ["write"], [0] * 5 + [10]))
    assert classify_workload(sig) == "metadata-intensive"


def test_classify_small_op_streaming():
    ops = ["write"] * 2000
    df = _df(ops, [128] * 2000, dt=0.001)  # 1000 ev/s, tiny ops
    assert classify_workload(io_signature(df)) == "small-op-streaming"


def test_classify_checkpoint():
    df = _df(["write"] * 10, [16 * 2**20] * 10, dt=10.0)
    assert classify_workload(io_signature(df)) == "checkpoint"


def test_classify_read_intensive():
    df = _df(["read"] * 10 + ["write"], [2**20] * 10 + [1000], dt=10.0)
    assert classify_workload(io_signature(df)) == "read-intensive"


def test_classify_balanced():
    df = _df(["read", "write"] * 5, [2**20] * 10, dt=10.0)
    assert classify_workload(io_signature(df)) == "balanced-rw"


def test_compare_ranks_by_event_rate():
    fast = io_signature(_df(["write"] * 1000, [100] * 1000, dt=0.001))
    slow = io_signature(_df(["write"] * 10, [2**20] * 10, dt=10.0))
    rows = compare_signatures({"fast": fast, "slow": slow})
    assert [r["label"] for r in rows] == ["fast", "slow"]
    assert rows[0]["overhead_risk"] == "high"
    assert rows[1]["overhead_risk"] == "low"
