"""Tests for the trace drill-down rendering layer."""

from repro.telemetry.spans import SpanTree, TraceRegistry
from repro.telemetry.trace import HopRecord, MessageTrace
from repro.webservices import (
    flame_panel,
    render_ascii,
    render_trace_panels,
    render_waterfall,
    trace_panels,
    waterfall_panel,
)

T0 = 1_650_000_000.0


def _trace(trace_id, hops):
    t = MessageTrace(trace_id=trace_id, job_id=1, rank=0, t_begin=T0)
    t.hops.extend(HopRecord(*h) for h in hops)
    return t


def _stored(trace_id="1:0:0", e2e=0.5):
    return _trace(trace_id, [
        ("publish", "n1", T0, T0 + 0.001, "published"),
        ("bus", "n1", T0 + 0.001, T0 + 0.001, "delivered"),
        ("forward", "n1", T0 + 0.001, T0 + 0.003, "forwarded"),
        ("ingest", "s1", T0 + 0.004, T0 + e2e, "stored"),
    ])


def _registry(n=4):
    reg = TraceRegistry()
    for i in range(n):
        reg.offer(_stored(f"1:0:{i}", e2e=0.1 * (i + 1)))
    reg.offer(_trace("1:0:99", [
        ("forward", "n1", T0, T0 + 0.002, "drop_overflow"),
    ]))
    return reg


def test_render_waterfall_marks_path_and_slack():
    tree = SpanTree.from_trace(_stored())
    out = render_waterfall(tree)
    assert "trace 1:0:0" in out
    assert "[stored]" in out
    assert "e2e=" in out
    assert "█" in out            # on-path cells
    assert "|" in out            # the instantaneous bus hop
    assert "exact: yes" in out
    assert "gating: ingest" in out


def test_render_waterfall_dropped_trace():
    tree = SpanTree.from_trace(_trace("1:0:9", [
        ("publish", "n1", T0, T0 + 0.001, "published"),
        ("forward", "n1", T0 + 0.001, T0 + 0.002, "drop_overflow"),
    ]))
    out = render_waterfall(tree)
    assert "dropped at forward/n1 (drop_overflow)" in out
    assert "e2e=" not in out


def test_waterfall_panel_payload_shape():
    tree = SpanTree.from_trace(_stored())
    panel = waterfall_panel(tree)
    assert panel.viz == "waterfall"
    assert panel.payload["trace_id"] == "1:0:0"
    assert panel.payload["gating_stage"] == "ingest"
    spans = panel.payload["spans"]
    assert len(spans) == 4
    for row in spans:
        # Gating + slack always re-sum to the span's duration.
        assert row["path_s"] + row["slack_s"] == row["duration_s"]


def test_flame_panel_feeds_the_bars_renderer():
    panel = flame_panel(_registry().rollup())
    assert panel.viz == "bars"
    out = render_ascii(panel)
    assert "ingest" in out
    assert "#" in out


def test_trace_panels_standard_set():
    reg = _registry()
    panels = trace_panels(reg, slowest=2)
    titles = [p.title for p in panels]
    assert titles[0].startswith("slowest retained traces")
    assert "critical-path flame" in titles[1]
    assert sum(p.viz == "waterfall" for p in panels) == 2
    assert titles[-1] == "retained dropped traces"
    # Slowest-first in the table.
    table = panels[0].payload
    assert [r["trace_id"] for r in table] == ["1:0:3", "1:0:2"]


def test_render_trace_panels_end_to_end():
    out = render_trace_panels(_registry(), slowest=1)
    assert "slowest retained traces" in out
    assert "critical-path flame" in out
    assert "trace 1:0:3" in out
    assert "retained dropped traces" in out


def test_trace_panels_empty_registry():
    reg = TraceRegistry()
    panels = trace_panels(reg)
    # No waterfalls, no drop table — but the set still renders.
    assert sum(p.viz == "waterfall" for p in panels) == 0
    out = render_trace_panels(reg)
    assert "(no rows)" in out
