"""Tests for variability quantification and the DXT timeline path."""

import numpy as np
import pytest

from repro.webservices import (
    DataFrame,
    op_dispersion,
    timeline_from_dxt,
    variability_report,
)
from repro.webservices.dataframe import DataFrameError


def _campaign_df(job_means, n_per_job=50, seed=0):
    """Jobs with specified mean write durations."""
    rng = np.random.default_rng(seed)
    rows = {"job_id": [], "op": [], "seg_dur": []}
    for job, mean in job_means.items():
        for _ in range(n_per_job):
            rows["job_id"].append(job)
            rows["op"].append("write")
            rows["seg_dur"].append(max(rng.normal(mean, mean * 0.05), 1e-6))
    return DataFrame(
        {
            "job_id": np.asarray(rows["job_id"]),
            "op": np.asarray(rows["op"], dtype=object),
            "seg_dur": np.asarray(rows["seg_dur"]),
        }
    )


# -------------------------------------------------------------- dispersion


def test_op_dispersion_basics():
    d = op_dispersion(np.asarray([1.0, 1.0, 1.0, 1.0]))
    assert d["mean"] == 1.0
    assert d["cov"] == 0.0
    assert d["tail_ratio"] == pytest.approx(1.0)


def test_op_dispersion_tail():
    durations = np.asarray([0.1] * 90 + [10.0] * 10)
    d = op_dispersion(durations)
    assert d["tail_ratio"] > 10
    assert d["p95"] > d["p50"]


def test_op_dispersion_empty_rejected():
    with pytest.raises(ValueError):
        op_dispersion(np.asarray([]))


def test_op_dispersion_single_sample():
    d = op_dispersion(np.asarray([2.0]))
    assert d["cov"] == 0.0


# ------------------------------------------------------------------ report


def test_stable_campaign_verdict():
    df = _campaign_df({1: 0.1, 2: 0.1, 3: 0.11, 4: 0.1, 5: 0.09})
    report = variability_report(df)
    assert report["write"]["verdict"] == "stable"
    assert report["write"]["cross_job_cov"] < 0.25
    assert len(report["write"]["per_job_mean"]) == 5


def test_anomalous_campaign_verdict():
    df = _campaign_df({1: 0.1, 2: 0.1, 3: 0.1, 4: 0.1, 5: 5.0})
    report = variability_report(df)
    assert report["write"]["verdict"] == "highly-variable"
    assert report["write"]["cross_job_cov"] > 1.0


def test_report_no_matching_ops():
    df = _campaign_df({1: 0.1})
    with pytest.raises(DataFrameError):
        variability_report(df, ops=("fsync",))


def test_report_skips_absent_op():
    df = _campaign_df({1: 0.1, 2: 0.1})
    report = variability_report(df)  # defaults include 'read'
    assert "write" in report
    assert "read" not in report


# -------------------------------------------------------- DXT timeline path


def test_timeline_from_dxt_matches_connector_timeline():
    from repro.apps import MpiIoTest
    from repro.core import ConnectorConfig
    from repro.experiments import World, WorldConfig, run_job
    from repro.webservices import rows_to_dataframe, timeline

    world = World(WorldConfig(seed=15, quiet=True, n_compute_nodes=4))
    result = run_job(
        world,
        MpiIoTest(n_nodes=2, ranks_per_node=2, iterations=3, block_size=2**20,
                  collective=False, sync_per_iteration=False),
        "nfs",
        connector_config=ConnectorConfig(),
    )
    # Run-time path.
    rows = [r for r in world.query_job(result.job_id).rows if r["module"] == "POSIX"]
    tl_live = timeline(rows_to_dataframe(rows), result.job_id)
    # Post-mortem path.
    tl_dxt = timeline_from_dxt(result.darshan_log)

    assert len(tl_live["t"]) == len(tl_dxt["t"])
    np.testing.assert_allclose(np.sort(tl_live["t"]), np.sort(tl_dxt["t"]), atol=1e-6)
    assert tl_live["t0"] == pytest.approx(tl_dxt["t0"], abs=1e-6)


def test_timeline_from_dxt_requires_segments():
    from repro.darshan.logfile import DarshanLog

    empty = DarshanLog(
        job_id=1, uid=1, exe="/x", nprocs=1, start_time=0.0, end_time=1.0,
        records=[], names={},
    )
    with pytest.raises(DataFrameError):
        timeline_from_dxt(empty)
